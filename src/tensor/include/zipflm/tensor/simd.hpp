// Vectorized kernel substrate: compile-time-detected AVX2 / SSE2 lanes
// with a portable scalar fallback, plus the span-level kernels the hot
// loops (gemm, softmax, activations, casts, exchange reduce, optimizer)
// are built on.
//
// Two invariants make this layer safe to drop underneath the PR-1
// bitwise-determinism contract:
//
//  1. Every instruction used is exactly rounded in IEEE-754 binary32
//     (add/sub/mul/div/sqrt/min/max/floor) or exact (bit casts, integer
//     shifts).  No FMA is ever emitted: mul-then-add is written as two
//     intrinsics and the build pins -ffp-contract=off, so a lane
//     performs the *identical* float-operation sequence a scalar loop
//     would.  Elementwise kernels are therefore bitwise identical
//     across AVX2, SSE2, and the scalar fallback.
//
//  2. Reductions (sums, dot products, maxima) always use the same
//     fixed 8-lane accumulator layout regardless of register width:
//     element i feeds conceptual lane (i mod 8), and the lanes are
//     combined with one fixed tree (l[j]+l[j+4], then +2, then +1).
//     AVX2 holds the 8 lanes in one register, SSE2 in two, the scalar
//     fallback in eight variables — same additions, same order, same
//     bits.  This also makes reductions independent of how work is
//     chunked, because chunk boundaries in our kernels always fall on
//     whole rows / whole output elements.
//
// Runtime backend switch: set ZIPFLM_SIMD=scalar (or call
// set_backend(Backend::kScalar)) to route every dispatched kernel
// through the scalar twin — used by the determinism tests to prove (1)
// and (2) hold on the machine at hand.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__AVX2__)
#define ZIPFLM_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__)
#define ZIPFLM_SIMD_SSE2 1
#include <immintrin.h>
#endif

namespace zipflm::simd {

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

enum class Backend : std::uint8_t { kNative, kScalar };

namespace detail {
inline Backend initial_backend() {
  const char* env = std::getenv("ZIPFLM_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return Backend::kScalar;
  }
  return Backend::kNative;
}
inline Backend& backend_slot() {
  static Backend b = initial_backend();
  return b;
}
}  // namespace detail

inline Backend active_backend() { return detail::backend_slot(); }
inline void set_backend(Backend b) { detail::backend_slot() = b; }

/// Human-readable name of the native instruction set this binary was
/// compiled for (what Backend::kNative dispatches to).
inline const char* native_isa() {
#if defined(ZIPFLM_SIMD_AVX2)
  return "avx2";
#elif defined(ZIPFLM_SIMD_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------------
// Vector op sets.  V::Reg is the register type, V::kWidth the lane
// count; all ops are exactly rounded so lane results equal scalar
// results bit for bit.
// ---------------------------------------------------------------------------

struct ScalarOps {
  using Reg = float;
  static constexpr std::size_t kWidth = 1;
  static Reg load(const float* p) { return *p; }
  static void store(float* p, Reg r) { *p = r; }
  static Reg set1(float v) { return v; }
  static Reg zero() { return 0.0f; }
  static Reg add(Reg a, Reg b) { return a + b; }
  static Reg sub(Reg a, Reg b) { return a - b; }
  static Reg mul(Reg a, Reg b) { return a * b; }
  static Reg div(Reg a, Reg b) { return a / b; }
  // Scalar twins of MINPS/MAXPS: return b on ties and NaN in a.
  static Reg min(Reg a, Reg b) { return a < b ? a : b; }
  static Reg max(Reg a, Reg b) { return a > b ? a : b; }
  static Reg floor_(Reg a) { return std::floor(a); }
  static Reg sqrt_(Reg a) { return std::sqrt(a); }
  /// 2^n for integer-valued n in [-127, 128], via exponent bits.  128
  /// maps to +inf, anything at or below -127 flushes to +0 — matching
  /// the vector backends exactly.
  static Reg pow2i(Reg n) {
    const std::int32_t i = static_cast<std::int32_t>(n);
    const std::uint32_t bits =
        i <= -127 ? 0u
                  : static_cast<std::uint32_t>((i + 127) << 23);
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
  }
};

#if defined(ZIPFLM_SIMD_AVX2)
struct NativeOps {
  using Reg = __m256;
  static constexpr std::size_t kWidth = 8;
  static Reg load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, Reg r) { _mm256_storeu_ps(p, r); }
  static Reg set1(float v) { return _mm256_set1_ps(v); }
  static Reg zero() { return _mm256_setzero_ps(); }
  static Reg add(Reg a, Reg b) { return _mm256_add_ps(a, b); }
  static Reg sub(Reg a, Reg b) { return _mm256_sub_ps(a, b); }
  static Reg mul(Reg a, Reg b) { return _mm256_mul_ps(a, b); }
  static Reg div(Reg a, Reg b) { return _mm256_div_ps(a, b); }
  static Reg min(Reg a, Reg b) { return _mm256_min_ps(a, b); }
  static Reg max(Reg a, Reg b) { return _mm256_max_ps(a, b); }
  static Reg floor_(Reg a) { return _mm256_floor_ps(a); }
  static Reg sqrt_(Reg a) { return _mm256_sqrt_ps(a); }
  static Reg pow2i(Reg n) {
    const __m256i i = _mm256_cvttps_epi32(n);
    // (i + 127) << 23; lanes <= -127 would shift garbage into the sign,
    // so clamp them to the zero pattern first.
    const __m256i biased = _mm256_add_epi32(i, _mm256_set1_epi32(127));
    const __m256i ok = _mm256_cmpgt_epi32(biased, _mm256_setzero_si256());
    const __m256i bits =
        _mm256_and_si256(_mm256_slli_epi32(biased, 23), ok);
    return _mm256_castsi256_ps(bits);
  }
};
#elif defined(ZIPFLM_SIMD_SSE2)
struct NativeOps {
  using Reg = __m128;
  static constexpr std::size_t kWidth = 4;
  static Reg load(const float* p) { return _mm_loadu_ps(p); }
  static void store(float* p, Reg r) { _mm_storeu_ps(p, r); }
  static Reg set1(float v) { return _mm_set1_ps(v); }
  static Reg zero() { return _mm_setzero_ps(); }
  static Reg add(Reg a, Reg b) { return _mm_add_ps(a, b); }
  static Reg sub(Reg a, Reg b) { return _mm_sub_ps(a, b); }
  static Reg mul(Reg a, Reg b) { return _mm_mul_ps(a, b); }
  static Reg div(Reg a, Reg b) { return _mm_div_ps(a, b); }
  static Reg min(Reg a, Reg b) { return _mm_min_ps(a, b); }
  static Reg max(Reg a, Reg b) { return _mm_max_ps(a, b); }
  static Reg floor_(Reg a) {
#if defined(__SSE4_1__)
    return _mm_floor_ps(a);
#else
    // Truncate, then subtract 1 where truncation rounded toward zero on
    // a negative input.  Exact for |a| < 2^31 (all our exp arguments).
    const __m128 t = _mm_cvtepi32_ps(_mm_cvttps_epi32(a));
    const __m128 adj = _mm_and_ps(_mm_cmpgt_ps(t, a), _mm_set1_ps(1.0f));
    return _mm_sub_ps(t, adj);
#endif
  }
  static Reg sqrt_(Reg a) { return _mm_sqrt_ps(a); }
  static Reg pow2i(Reg n) {
    const __m128i i = _mm_cvttps_epi32(n);
    const __m128i biased = _mm_add_epi32(i, _mm_set1_epi32(127));
    const __m128i ok = _mm_cmpgt_epi32(biased, _mm_setzero_si128());
    const __m128i bits = _mm_and_si128(_mm_slli_epi32(biased, 23), ok);
    return _mm_castsi128_ps(bits);
  }
};
#else
using NativeOps = ScalarOps;
#endif

// ---------------------------------------------------------------------------
// exp / sigmoid / tanh: cephes-style degree-5 polynomial (the
// sse_mathfun lineage), built from exactly-rounded ops only — identical
// bits on every backend.  Absolute error vs libm expf is ~2 ulp.
// Arguments beyond +-88.376 saturate (to +inf / +0), which is benign
// for every caller here: softmax feeds exp(x - max) <= 0 and the
// sigmoid/tanh forms below turn the saturations into exact 0/1 limits.
// ---------------------------------------------------------------------------

template <class V>
inline typename V::Reg exp_reg(typename V::Reg x) {
  using R = typename V::Reg;
  x = V::min(x, V::set1(88.3762626647949f));
  x = V::max(x, V::set1(-88.3762626647949f));
  // n = floor(x * log2(e) + 0.5); reduce with ln2 split in two parts so
  // the reduced argument keeps full precision.
  const R fx =
      V::floor_(V::add(V::mul(x, V::set1(1.44269504088896341f)),
                       V::set1(0.5f)));
  x = V::sub(x, V::mul(fx, V::set1(0.693359375f)));
  x = V::sub(x, V::mul(fx, V::set1(-2.12194440e-4f)));
  R y = V::set1(1.9875691500e-4f);
  y = V::add(V::mul(y, x), V::set1(1.3981999507e-3f));
  y = V::add(V::mul(y, x), V::set1(8.3334519073e-3f));
  y = V::add(V::mul(y, x), V::set1(4.1665795894e-2f));
  y = V::add(V::mul(y, x), V::set1(1.6666665459e-1f));
  y = V::add(V::mul(y, x), V::set1(5.0000001201e-1f));
  const R z = V::mul(x, x);
  y = V::add(V::add(V::mul(y, z), x), V::set1(1.0f));
  return V::mul(y, V::pow2i(fx));
}

template <class V>
inline typename V::Reg sigmoid_reg(typename V::Reg x) {
  const typename V::Reg one = V::set1(1.0f);
  return V::div(one, V::add(one, exp_reg<V>(V::sub(V::zero(), x))));
}

template <class V>
inline typename V::Reg tanh_reg(typename V::Reg x) {
  // tanh(x) = 1 - 2 / (exp(2x) + 1); exp saturation gives exact +-1.
  const typename V::Reg one = V::set1(1.0f);
  return V::sub(one,
                V::div(V::set1(2.0f),
                       V::add(exp_reg<V>(V::add(x, x)), one)));
}

/// Scalar exp with the polynomial above — the lane-faithful reference.
inline float exp_scalar(float x) { return exp_reg<ScalarOps>(x); }

// ---------------------------------------------------------------------------
// Fixed 8-lane reduction accumulator (invariant 2 above).
// ---------------------------------------------------------------------------

inline constexpr std::size_t kAccLanes = 8;

template <class V>
struct Acc8 {
  static constexpr std::size_t kPacks = kAccLanes / V::kWidth;
  typename V::Reg acc[kPacks];

  void fill(float v) {
    for (std::size_t p = 0; p < kPacks; ++p) acc[p] = V::set1(v);
  }
  /// lanes[j] += x[j] for j in [0, 8).
  void add_block(const float* x) {
    for (std::size_t p = 0; p < kPacks; ++p) {
      acc[p] = V::add(acc[p], V::load(x + p * V::kWidth));
    }
  }
  /// lanes[j] += a[j] * b[j] (two rounded ops, never an FMA).
  void mul_add_block(const float* a, const float* b) {
    for (std::size_t p = 0; p < kPacks; ++p) {
      acc[p] = V::add(acc[p], V::mul(V::load(a + p * V::kWidth),
                                     V::load(b + p * V::kWidth)));
    }
  }
  void max_block(const float* x) {
    for (std::size_t p = 0; p < kPacks; ++p) {
      acc[p] = V::max(acc[p], V::load(x + p * V::kWidth));
    }
  }
  void store(float* lanes) const {
    for (std::size_t p = 0; p < kPacks; ++p) {
      V::store(lanes + p * V::kWidth, acc[p]);
    }
  }
};

/// The one combine tree every reduction uses.
inline float combine_sum8(const float lanes[kAccLanes]) {
  const float m0 = lanes[0] + lanes[4];
  const float m1 = lanes[1] + lanes[5];
  const float m2 = lanes[2] + lanes[6];
  const float m3 = lanes[3] + lanes[7];
  const float n0 = m0 + m2;
  const float n1 = m1 + m3;
  return n0 + n1;
}

inline float combine_max8(const float lanes[kAccLanes]) {
  const auto mx = [](float a, float b) { return a > b ? a : b; };
  const float m0 = mx(lanes[0], lanes[4]);
  const float m1 = mx(lanes[1], lanes[5]);
  const float m2 = mx(lanes[2], lanes[6]);
  const float m3 = mx(lanes[3], lanes[7]);
  return mx(mx(m0, m2), mx(m1, m3));
}

// ---------------------------------------------------------------------------
// Span kernels (templates).  Elementwise kernels process full packs
// then finish the tail with ScalarOps — per-element results do not
// depend on lane position, so any width gives the same bits.
// Reduction kernels walk blocks of 8 and fold the tail into lanes
// [0, n mod 8) before the combine tree.
// ---------------------------------------------------------------------------

template <class V>
void add_span(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(dst + i, V::add(V::load(dst + i), V::load(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

template <class V>
void axpy_span(float a, const float* x, float* y, std::size_t n) {
  const typename V::Reg av = V::set1(a);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(y + i, V::add(V::load(y + i), V::mul(av, V::load(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

template <class V>
void scale_span(float* x, float a, std::size_t n) {
  const typename V::Reg av = V::set1(a);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(x + i, V::mul(V::load(x + i), av));
  }
  for (; i < n; ++i) x[i] *= a;
}

template <class V>
void hadamard_span(const float* x, const float* y, float* z, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(z + i, V::mul(V::load(x + i), V::load(y + i)));
  }
  for (; i < n; ++i) z[i] = x[i] * y[i];
}

template <class V>
void sigmoid_span(const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(y + i, sigmoid_reg<V>(V::load(x + i)));
  }
  for (; i < n; ++i) y[i] = sigmoid_reg<ScalarOps>(x[i]);
}

template <class V>
void tanh_span(const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(y + i, tanh_reg<V>(V::load(x + i)));
  }
  for (; i < n; ++i) y[i] = tanh_reg<ScalarOps>(x[i]);
}

template <class V>
void relu_span(const float* x, float* y, std::size_t n) {
  const typename V::Reg z = V::zero();
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(y + i, V::max(z, V::load(x + i)));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

/// dy *= y * (1 - y)   (written as dy = f(y) matching the Tensor op).
template <class V>
void sigmoid_grad_span(const float* y, float* dy, std::size_t n) {
  const typename V::Reg one = V::set1(1.0f);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const typename V::Reg yv = V::load(y + i);
    V::store(dy + i, V::mul(yv, V::sub(one, yv)));
  }
  for (; i < n; ++i) dy[i] = y[i] * (1.0f - y[i]);
}

template <class V>
void tanh_grad_span(const float* y, float* dy, std::size_t n) {
  const typename V::Reg one = V::set1(1.0f);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const typename V::Reg yv = V::load(y + i);
    V::store(dy + i, V::sub(one, V::mul(yv, yv)));
  }
  for (; i < n; ++i) dy[i] = 1.0f - y[i] * y[i];
}

template <class V>
void clip_span(float* x, float limit, std::size_t n) {
  const typename V::Reg lo = V::set1(-limit);
  const typename V::Reg hi = V::set1(limit);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(x + i, V::min(V::max(V::load(x + i), lo), hi));
  }
  for (; i < n; ++i) {
    const float v = x[i] > -limit ? x[i] : -limit;
    x[i] = v < limit ? v : limit;
  }
}

template <class V>
float reduce_max_span(const float* x, std::size_t n, float init) {
  Acc8<V> acc;
  acc.fill(init);
  const std::size_t n8 = n & ~(kAccLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccLanes) acc.max_block(x + i);
  float lanes[kAccLanes];
  acc.store(lanes);
  for (std::size_t j = 0; j < n - n8; ++j) {
    lanes[j] = x[n8 + j] > lanes[j] ? x[n8 + j] : lanes[j];
  }
  return combine_max8(lanes);
}

template <class V>
float sum_span(const float* x, std::size_t n) {
  Acc8<V> acc;
  acc.fill(0.0f);
  const std::size_t n8 = n & ~(kAccLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccLanes) acc.add_block(x + i);
  float lanes[kAccLanes];
  acc.store(lanes);
  for (std::size_t j = 0; j < n - n8; ++j) lanes[j] += x[n8 + j];
  return combine_sum8(lanes);
}

template <class V>
float dot_span(const float* a, const float* b, std::size_t n) {
  Acc8<V> acc;
  acc.fill(0.0f);
  const std::size_t n8 = n & ~(kAccLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccLanes) {
    acc.mul_add_block(a + i, b + i);
  }
  float lanes[kAccLanes];
  acc.store(lanes);
  for (std::size_t j = 0; j < n - n8; ++j) {
    lanes[j] += a[n8 + j] * b[n8 + j];
  }
  return combine_sum8(lanes);
}

template <class V>
float sum_sq_span(const float* x, std::size_t n) {
  return dot_span<V>(x, x, n);
}

template <class V>
float max_abs_span(const float* x, std::size_t n) {
  // |x| as max(x, -x): exact, and the 8-lane layout keeps the fold
  // order fixed.  Seeded with 0 like the scalar original.
  Acc8<V> acc;
  acc.fill(0.0f);
  const std::size_t n8 = n & ~(kAccLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccLanes) {
    for (std::size_t p = 0; p < Acc8<V>::kPacks; ++p) {
      const typename V::Reg v = V::load(x + i + p * V::kWidth);
      acc.acc[p] = V::max(acc.acc[p], V::max(v, V::sub(V::zero(), v)));
    }
  }
  float lanes[kAccLanes];
  acc.store(lanes);
  for (std::size_t j = 0; j < n - n8; ++j) {
    const float v = x[n8 + j];
    const float a = v > -v ? v : -v;
    lanes[j] = a > lanes[j] ? a : lanes[j];
  }
  return combine_max8(lanes);
}

/// out[i] = exp(x[i] - mx); returns the fixed-tree sum of the outputs.
/// The single pass both materializes the numerators and accumulates the
/// softmax denominator.
template <class V>
float exp_sub_sum_span(const float* x, float* out, float mx, std::size_t n) {
  const typename V::Reg mv = V::set1(mx);
  Acc8<V> acc;
  acc.fill(0.0f);
  const std::size_t n8 = n & ~(kAccLanes - 1);
  for (std::size_t i = 0; i < n8; i += kAccLanes) {
    for (std::size_t p = 0; p < Acc8<V>::kPacks; ++p) {
      const typename V::Reg e =
          exp_reg<V>(V::sub(V::load(x + i + p * V::kWidth), mv));
      V::store(out + i + p * V::kWidth, e);
      acc.acc[p] = V::add(acc.acc[p], e);
    }
  }
  float lanes[kAccLanes];
  acc.store(lanes);
  for (std::size_t j = 0; j < n - n8; ++j) {
    const float e = exp_reg<ScalarOps>(x[n8 + j] - mx);
    out[n8 + j] = e;
    lanes[j] += e;
  }
  return combine_sum8(lanes);
}

/// y[i] = x[i] - c  (log-softmax second pass).
template <class V>
void sub_const_span(const float* x, float* y, float c, std::size_t n) {
  const typename V::Reg cv = V::set1(c);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::store(y + i, V::sub(V::load(x + i), cv));
  }
  for (; i < n; ++i) y[i] = x[i] - c;
}

// ---------------------------------------------------------------------------
// Fused recurrent cells (RHN / LSTM) — elementwise, so backend-exact.
// ---------------------------------------------------------------------------

/// RHN micro-layer: h = tanh(ph), t = sigmoid(pt),
/// s = h*t + sp*(1-t).  h/t are cached for backward.
template <class V>
void rhn_cell_span(const float* ph, const float* pt, const float* sp,
                   float* h, float* t, float* s, std::size_t n) {
  const typename V::Reg one = V::set1(1.0f);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const typename V::Reg hv = tanh_reg<V>(V::load(ph + i));
    const typename V::Reg tv = sigmoid_reg<V>(V::load(pt + i));
    V::store(h + i, hv);
    V::store(t + i, tv);
    V::store(s + i, V::add(V::mul(hv, tv),
                           V::mul(V::load(sp + i), V::sub(one, tv))));
  }
  for (; i < n; ++i) {
    const float hv = tanh_reg<ScalarOps>(ph[i]);
    const float tv = sigmoid_reg<ScalarOps>(pt[i]);
    h[i] = hv;
    t[i] = tv;
    s[i] = hv * tv + sp[i] * (1.0f - tv);
  }
}

/// Inference variant: carry state updated in place, no caches.
template <class V>
void rhn_cell_inplace_span(const float* ph, const float* pt, float* s,
                           std::size_t n) {
  const typename V::Reg one = V::set1(1.0f);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const typename V::Reg hv = tanh_reg<V>(V::load(ph + i));
    const typename V::Reg tv = sigmoid_reg<V>(V::load(pt + i));
    V::store(s + i, V::add(V::mul(hv, tv),
                           V::mul(V::load(s + i), V::sub(one, tv))));
  }
  for (; i < n; ++i) {
    const float hv = tanh_reg<ScalarOps>(ph[i]);
    const float tv = sigmoid_reg<ScalarOps>(pt[i]);
    s[i] = hv * tv + s[i] * (1.0f - tv);
  }
}

/// RHN micro-layer backward: given cached h/t, entering state sp and
/// downstream gradient d, produce the pre-activation gradients and the
/// carry gradient (same operation order as the scalar original).
template <class V>
void rhn_cell_grad_span(const float* h, const float* t, const float* sp,
                        const float* d, float* dzh, float* dzt, float* dsp,
                        std::size_t n) {
  const typename V::Reg one = V::set1(1.0f);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const typename V::Reg hv = V::load(h + i);
    const typename V::Reg tv = V::load(t + i);
    const typename V::Reg sv = V::load(sp + i);
    const typename V::Reg dv = V::load(d + i);
    const typename V::Reg dh = V::mul(dv, tv);
    const typename V::Reg dt = V::mul(dv, V::sub(hv, sv));
    V::store(dzh + i, V::mul(dh, V::sub(one, V::mul(hv, hv))));
    V::store(dzt + i, V::mul(V::mul(dt, tv), V::sub(one, tv)));
    V::store(dsp + i, V::mul(dv, V::sub(one, tv)));
  }
  for (; i < n; ++i) {
    const float hv = h[i];
    const float tv = t[i];
    const float dh = d[i] * tv;
    const float dt = d[i] * (hv - sp[i]);
    dzh[i] = dh * (1.0f - hv * hv);
    dzt[i] = dt * tv * (1.0f - tv);
    dsp[i] = d[i] * (1.0f - tv);
  }
}

/// LSTM cell update from gate activations (i, f, g, o laid out as four
/// n-length segments): c = f*cp + i*g, tc = tanh(c), h = o*tc.
template <class V>
void lstm_cell_span(const float* ig, const float* fg, const float* gg,
                    const float* og, const float* cp, float* c, float* tc,
                    float* h, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const typename V::Reg cv =
        V::add(V::mul(V::load(fg + i), V::load(cp + i)),
               V::mul(V::load(ig + i), V::load(gg + i)));
    V::store(c + i, cv);
    const typename V::Reg tcv = tanh_reg<V>(cv);
    V::store(tc + i, tcv);
    V::store(h + i, V::mul(V::load(og + i), tcv));
  }
  for (; i < n; ++i) {
    const float cv = fg[i] * cp[i] + ig[i] * gg[i];
    c[i] = cv;
    const float tcv = tanh_reg<ScalarOps>(cv);
    tc[i] = tcv;
    h[i] = og[i] * tcv;
  }
}

/// LSTM cell backward: dz segments get the pre-activation gradients,
/// dcn is the carry gradient (read for step t, rewritten for t-1).
template <class V>
void lstm_cell_grad_span(const float* ig, const float* fg, const float* gg,
                         const float* og, const float* tc, const float* cp,
                         const float* dh, float* dcn, float* dzi, float* dzf,
                         float* dzg, float* dzo, std::size_t n) {
  const typename V::Reg one = V::set1(1.0f);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const typename V::Reg iv = V::load(ig + i);
    const typename V::Reg fv = V::load(fg + i);
    const typename V::Reg gv = V::load(gg + i);
    const typename V::Reg ov = V::load(og + i);
    const typename V::Reg tcv = V::load(tc + i);
    const typename V::Reg dhv = V::load(dh + i);
    const typename V::Reg dov = V::mul(dhv, tcv);
    const typename V::Reg dc =
        V::add(V::load(dcn + i),
               V::mul(V::mul(dhv, ov), V::sub(one, V::mul(tcv, tcv))));
    const typename V::Reg di = V::mul(dc, gv);
    const typename V::Reg df = V::mul(dc, V::load(cp + i));
    const typename V::Reg dg = V::mul(dc, iv);
    V::store(dzi + i, V::mul(V::mul(di, iv), V::sub(one, iv)));
    V::store(dzf + i, V::mul(V::mul(df, fv), V::sub(one, fv)));
    V::store(dzg + i, V::mul(dg, V::sub(one, V::mul(gv, gv))));
    V::store(dzo + i, V::mul(V::mul(dov, ov), V::sub(one, ov)));
    V::store(dcn + i, V::mul(dc, fv));
  }
  for (; i < n; ++i) {
    const float iv = ig[i];
    const float fv = fg[i];
    const float gv = gg[i];
    const float ov = og[i];
    const float tcv = tc[i];
    const float dhv = dh[i];
    const float dov = dhv * tcv;
    const float dc = dcn[i] + dhv * ov * (1.0f - tcv * tcv);
    dzi[i] = dc * gv * iv * (1.0f - iv);
    dzf[i] = dc * cp[i] * fv * (1.0f - fv);
    dzg[i] = dc * iv * (1.0f - gv * gv);
    dzo[i] = dov * ov * (1.0f - ov);
    dcn[i] = dc * fv;
  }
}

// ---------------------------------------------------------------------------
// Dispatched entry points: route to the native ISA or the scalar twin
// depending on the active backend.  One branch per span-level call.
// ---------------------------------------------------------------------------

#define ZIPFLM_SIMD_DISPATCH(fn, ...)                       \
  (::zipflm::simd::active_backend() == Backend::kNative     \
       ? fn<NativeOps>(__VA_ARGS__)                         \
       : fn<ScalarOps>(__VA_ARGS__))

inline void add_inplace(float* dst, const float* src, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(add_span, dst, src, n);
}
inline void axpy(float a, const float* x, float* y, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(axpy_span, a, x, y, n);
}
inline void scale(float* x, float a, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(scale_span, x, a, n);
}
inline void hadamard(const float* x, const float* y, float* z,
                     std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(hadamard_span, x, y, z, n);
}
inline void sigmoid(const float* x, float* y, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(sigmoid_span, x, y, n);
}
inline void tanh_op(const float* x, float* y, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(tanh_span, x, y, n);
}
inline void relu(const float* x, float* y, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(relu_span, x, y, n);
}
inline void sigmoid_grad(const float* y, float* dy, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(sigmoid_grad_span, y, dy, n);
}
inline void tanh_grad(const float* y, float* dy, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(tanh_grad_span, y, dy, n);
}
inline void clip(float* x, float limit, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(clip_span, x, limit, n);
}
inline float reduce_max(const float* x, std::size_t n, float init) {
  return ZIPFLM_SIMD_DISPATCH(reduce_max_span, x, n, init);
}
inline float sum(const float* x, std::size_t n) {
  return ZIPFLM_SIMD_DISPATCH(sum_span, x, n);
}
inline float dot(const float* a, const float* b, std::size_t n) {
  return ZIPFLM_SIMD_DISPATCH(dot_span, a, b, n);
}
inline float sum_sq(const float* x, std::size_t n) {
  return ZIPFLM_SIMD_DISPATCH(sum_sq_span, x, n);
}
inline float max_abs(const float* x, std::size_t n) {
  return ZIPFLM_SIMD_DISPATCH(max_abs_span, x, n);
}
inline float exp_sub_sum(const float* x, float* out, float mx,
                         std::size_t n) {
  return ZIPFLM_SIMD_DISPATCH(exp_sub_sum_span, x, out, mx, n);
}
inline void sub_const(const float* x, float* y, float c, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(sub_const_span, x, y, c, n);
}
inline void rhn_cell(const float* ph, const float* pt, const float* sp,
                     float* h, float* t, float* s, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(rhn_cell_span, ph, pt, sp, h, t, s, n);
}
inline void rhn_cell_inplace(const float* ph, const float* pt, float* s,
                             std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(rhn_cell_inplace_span, ph, pt, s, n);
}
inline void rhn_cell_grad(const float* h, const float* t, const float* sp,
                          const float* d, float* dzh, float* dzt, float* dsp,
                          std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(rhn_cell_grad_span, h, t, sp, d, dzh, dzt, dsp, n);
}
inline void lstm_cell(const float* ig, const float* fg, const float* gg,
                      const float* og, const float* cp, float* c, float* tc,
                      float* h, std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(lstm_cell_span, ig, fg, gg, og, cp, c, tc, h, n);
}
inline void lstm_cell_grad(const float* ig, const float* fg, const float* gg,
                           const float* og, const float* tc, const float* cp,
                           const float* dh, float* dcn, float* dzi,
                           float* dzf, float* dzg, float* dzo,
                           std::size_t n) {
  ZIPFLM_SIMD_DISPATCH(lstm_cell_grad_span, ig, fg, gg, og, tc, cp, dh, dcn,
                       dzi, dzf, dzg, dzo, n);
}

#undef ZIPFLM_SIMD_DISPATCH

}  // namespace zipflm::simd
