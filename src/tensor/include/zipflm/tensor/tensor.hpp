// Dense row-major FP32 tensor.
//
// Deliberately minimal: the LM stack needs matrices (and occasionally
// 3-D batches), gather/scatter by row, and BLAS-3.  Value semantics,
// contiguous storage, no strides — every view is a std::span over rows,
// which keeps kernels simple and the aliasing rules obvious (Core
// Guidelines P.1, F.24).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "zipflm/support/error.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm {

using Index = std::int64_t;

class Tensor {
 public:
  Tensor() = default;

  /// Construct a zero-filled tensor with the given shape.
  explicit Tensor(std::vector<Index> shape);
  Tensor(std::initializer_list<Index> shape)
      : Tensor(std::vector<Index>(shape)) {}

  static Tensor zeros(std::initializer_list<Index> shape) {
    return Tensor(shape);
  }
  static Tensor full(std::initializer_list<Index> shape, float value);
  /// I.i.d. normal(0, stddev) entries.
  static Tensor randn(std::initializer_list<Index> shape, Rng& rng,
                      float stddev = 1.0f);
  /// I.i.d. uniform[lo, hi) entries.
  static Tensor uniform(std::initializer_list<Index> shape, Rng& rng, float lo,
                        float hi);

  Index rank() const noexcept { return static_cast<Index>(shape_.size()); }
  const std::vector<Index>& shape() const noexcept { return shape_; }
  Index dim(Index i) const {
    ZIPFLM_ASSERT(i >= 0 && i < rank(), "dim index out of range");
    return shape_[static_cast<std::size_t>(i)];
  }
  Index size() const noexcept { return static_cast<Index>(data_.size()); }
  bool empty() const noexcept { return data_.empty(); }

  /// 2-D accessors.  rows()/cols() assert rank == 2.
  Index rows() const {
    ZIPFLM_ASSERT(rank() == 2, "rows() requires a matrix");
    return shape_[0];
  }
  Index cols() const {
    ZIPFLM_ASSERT(rank() == 2, "cols() requires a matrix");
    return shape_[1];
  }

  float& operator()(Index i) {
    ZIPFLM_ASSERT(rank() == 1 && i >= 0 && i < size(), "1-D index bounds");
    return data_[static_cast<std::size_t>(i)];
  }
  float operator()(Index i) const {
    ZIPFLM_ASSERT(rank() == 1 && i >= 0 && i < size(), "1-D index bounds");
    return data_[static_cast<std::size_t>(i)];
  }
  float& operator()(Index i, Index j) {
    ZIPFLM_ASSERT(rank() == 2, "2-D accessor on non-matrix");
    ZIPFLM_ASSERT(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
                  "2-D index bounds");
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  float operator()(Index i, Index j) const {
    ZIPFLM_ASSERT(rank() == 2, "2-D accessor on non-matrix");
    ZIPFLM_ASSERT(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
                  "2-D index bounds");
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  /// Row view of a matrix.
  std::span<float> row(Index i) {
    ZIPFLM_ASSERT(rank() == 2 && i >= 0 && i < shape_[0], "row bounds");
    return std::span<float>(data_).subspan(
        static_cast<std::size_t>(i * shape_[1]),
        static_cast<std::size_t>(shape_[1]));
  }
  std::span<const float> row(Index i) const {
    ZIPFLM_ASSERT(rank() == 2 && i >= 0 && i < shape_[0], "row bounds");
    return std::span<const float>(data_).subspan(
        static_cast<std::size_t>(i * shape_[1]),
        static_cast<std::size_t>(shape_[1]));
  }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Reshape in place; total size must be preserved.
  void reshape(std::vector<Index> shape);

  /// Number of bytes of payload (the quantity the device allocator and
  /// the communication ledger account for).
  std::size_t bytes() const noexcept { return data_.size() * sizeof(float); }

 private:
  std::vector<Index> shape_;
  std::vector<float> data_;
};

/// Exact element-wise equality (test helper).
bool operator==(const Tensor& a, const Tensor& b);

}  // namespace zipflm
