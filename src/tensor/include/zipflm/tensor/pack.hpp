#pragma once

// Wire-pack kernels backing the zipflm::comm codecs: byte-plane
// split/merge (lossless reordering of little-endian element bytes so
// RLE sees long runs of zero/exponent bytes) and INT8 quantize /
// dequantize with a shared FP32 scale.
//
// Contract (same as simd.hpp): the vector paths are bitwise identical
// to the scalar fallbacks on every input.  Byte moves are trivially
// exact; the INT8 kernels use only exactly-rounded primitives
// (div, round-to-nearest-even, int conversion, mul), so quantized
// bytes and dequantized floats match across AVX2/SSE2/scalar and
// across the `ZIPFLM_SIMD=scalar` runtime override.

#include <cstddef>
#include <cstdint>

namespace zipflm::simd {

// Splits `elems` little-endian elements of `width` bytes each into
// `width` contiguous planes: planes[p * elems + i] = src[i * width + p].
// Vectorized for width 2 (SSE2) and width 4 (AVX2); any width falls
// back to the scalar loop.
void byteplane_split(const std::byte* src, std::size_t elems,
                     std::size_t width, std::byte* planes);

// Inverse of byteplane_split.
void byteplane_merge(const std::byte* planes, std::size_t elems,
                     std::size_t width, std::byte* dst);

// dst[i] = clamp(nearbyint(src[i] / scale), -127, 127).
// Preconditions: scale is positive and finite, src is finite, and
// |src[i]| / scale stays well below 2^31 (the codec derives scale as
// max|src| / 127, which guarantees it).  Rounding is round-to-nearest-
// even in every backend.
void int8_quantize(const float* src, std::size_t n, float scale,
                   std::int8_t* dst);

// dst[i] = float(q[i]) * scale (exactly-rounded multiply).
void int8_dequantize(const std::int8_t* q, std::size_t n, float scale,
                     float* dst);

}  // namespace zipflm::simd
