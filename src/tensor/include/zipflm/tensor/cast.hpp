// FP32 <-> FP16 buffer conversion with compression-scaling.
//
// Section III-C of the paper: before down-casting a gradient tensor to
// binary16 for the wire, multiply by a scale factor F (256/512/1024) so
// small gradients do not flush to zero; divide by F after up-casting on
// the receiving side.  These are the numeric primitives; the wire
// plumbing lives in zipflm::core::CompressedComm.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "zipflm/tensor/half.hpp"

namespace zipflm {

/// dst[i] = half(src[i] * scale).  dst is resized to match.
void compress_fp16(std::span<const float> src, float scale,
                   std::vector<Half>& dst);

/// dst[i] = float(src[i]) / scale.  dst is resized to match.
void decompress_fp16(std::span<const Half> src, float scale,
                     std::vector<float>& dst);

/// In-place variant: dst must already hold src.size() floats.  Lets a
/// caller up-cast straight into a gradient buffer without a staging
/// copy (identical bytes to the vector overload).
void decompress_fp16(std::span<const Half> src, float scale,
                     std::span<float> dst);

/// Round-trip a float buffer through scaled binary16 in place —
/// the exact value the receiving rank would observe.
void fp16_round_trip(std::span<float> values, float scale);

/// mine[i] = half(float(mine[i]) + float(left[i])) — the per-hop
/// accumulate of an FP16-wire ring allreduce (sum in FP32, store the
/// running partial back to binary16).  Single-threaded on purpose: it
/// runs inside a collective, where the caller owns the threading.
void half_accumulate(Half* mine, const Half* left, std::size_t n);

/// Statistics describing what a down-cast would do to a buffer; used by
/// tests and by the compression-accuracy experiment.
struct CastLossStats {
  std::size_t total = 0;
  std::size_t flushed_to_zero = 0;  ///< nonzero values that became zero
  std::size_t overflowed = 0;       ///< finite values that became inf
  double max_rel_error = 0.0;       ///< over values that survived
};

CastLossStats measure_cast_loss(std::span<const float> values, float scale);

}  // namespace zipflm
