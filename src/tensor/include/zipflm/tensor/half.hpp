// IEEE 754 binary16 ("half") implemented in software.
//
// The paper's compression technique (Section III-C) down-casts FP32
// gradients to FP16 for the wire and up-casts on receipt.  We implement
// the format bit-exactly — including subnormals, infinities and NaN,
// with round-to-nearest-even on conversion — so the accuracy-loss
// experiments measure real binary16 behaviour, not an approximation.
#pragma once

#include <cstdint>

namespace zipflm {

class Half {
 public:
  constexpr Half() noexcept = default;
  explicit Half(float value) noexcept : bits_(from_float(value)) {}

  /// Reinterpret raw binary16 bits.
  static constexpr Half from_bits(std::uint16_t bits) noexcept {
    Half h;
    h.bits_ = bits;
    return h;
  }

  explicit operator float() const noexcept { return to_float(bits_); }
  constexpr std::uint16_t bits() const noexcept { return bits_; }

  constexpr bool is_nan() const noexcept {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  constexpr bool is_inf() const noexcept { return (bits_ & 0x7FFFu) == 0x7C00u; }
  constexpr bool is_zero() const noexcept { return (bits_ & 0x7FFFu) == 0; }
  constexpr bool signbit() const noexcept { return (bits_ & 0x8000u) != 0; }

  friend constexpr bool operator==(Half a, Half b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;  // +0 == -0
    return a.bits_ == b.bits_;
  }

  /// Largest finite half: 65504.
  static constexpr float max_finite() noexcept { return 65504.0f; }
  /// Smallest positive normal: 2^-14.
  static constexpr float min_normal() noexcept { return 6.103515625e-05f; }
  /// Smallest positive subnormal: 2^-24.
  static constexpr float min_subnormal() noexcept { return 5.9604644775390625e-08f; }

  /// Round-to-nearest-even FP32 -> binary16 bits.
  static std::uint16_t from_float(float value) noexcept;
  /// Exact binary16 bits -> FP32 (every half is representable in float).
  static float to_float(std::uint16_t bits) noexcept;

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be wire-compatible with binary16");

}  // namespace zipflm
