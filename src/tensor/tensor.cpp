#include "zipflm/tensor/tensor.hpp"

#include <algorithm>
#include <numeric>

namespace zipflm {

namespace {
Index checked_total(const std::vector<Index>& shape) {
  Index total = 1;
  for (Index d : shape) {
    ZIPFLM_CHECK(d >= 0, "tensor dimensions must be non-negative");
    total *= d;
  }
  return total;
}
}  // namespace

Tensor::Tensor(std::vector<Index> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(checked_total(shape_)), 0.0f);
}

Tensor Tensor::full(std::initializer_list<Index> shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::initializer_list<Index> shape, Rng& rng,
                     float stddev) {
  Tensor t(shape);
  for (float& v : t.data_) v = static_cast<float>(rng.normal()) * stddev;
  return t;
}

Tensor Tensor::uniform(std::initializer_list<Index> shape, Rng& rng, float lo,
                       float hi) {
  Tensor t(shape);
  for (float& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::reshape(std::vector<Index> shape) {
  ZIPFLM_CHECK(checked_total(shape) == size(),
               "reshape must preserve element count");
  shape_ = std::move(shape);
}

bool operator==(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::equal(a.data().begin(), a.data().end(), b.data().begin());
}

}  // namespace zipflm
