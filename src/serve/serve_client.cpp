#include "zipflm/serve/serve_client.hpp"

#include <utility>

#include "zipflm/serve/wire.hpp"
#include "zipflm/support/error.hpp"

namespace zipflm::serve {

ServeClient::ServeClient(net::Transport& transport, int server_rank)
    : transport_(transport), server_rank_(server_rank) {
  ZIPFLM_CHECK(server_rank >= 0 && server_rank < transport.world_size() &&
                   server_rank != transport.rank(),
               "server_rank must be another rank of this world");
}

ServeClient::~ServeClient() {
  try {
    bye();
  } catch (...) {
    // Destructor courtesy only; a dead server already knows we left.
  }
}

void ServeClient::bye() {
  if (bye_sent_) return;
  bye_sent_ = true;
  wire::send_frame(transport_, server_rank_, wire::encode_bye());
}

std::vector<std::byte> ServeClient::next_frame() {
  ZIPFLM_CHECK(!bye_sent_, "client already said bye");
  return wire::recv_frame(transport_, server_rank_);
}

Admission ServeClient::submit(const Request& request) {
  ZIPFLM_CHECK(!bye_sent_, "client already said bye");
  wire::send_frame(transport_, server_rank_, wire::encode_submit(request));
  while (true) {
    const std::vector<std::byte> frame = next_frame();
    switch (wire::frame_type(frame)) {
      case wire::FrameType::Admission:
        return wire::decode_admission(frame);
      case wire::FrameType::Response: {
        // A previous request finished while we awaited this admission.
        Response response = wire::decode_response(frame);
        stash_.insert_or_assign(response.request_id, std::move(response));
        continue;
      }
      default:
        throw net::ProtocolError(
            "unexpected serve frame while awaiting admission");
    }
  }
}

Response ServeClient::wait(std::uint64_t request_id) {
  Response out;
  while (!try_collect(request_id, out)) {
    const std::vector<std::byte> frame = next_frame();
    if (wire::frame_type(frame) != wire::FrameType::Response) {
      throw net::ProtocolError(
          "unexpected serve frame while awaiting a response");
    }
    Response response = wire::decode_response(frame);
    stash_.insert_or_assign(response.request_id, std::move(response));
  }
  return out;
}

obs::MetricsSnapshot ServeClient::stats(const std::string& prefix) {
  ZIPFLM_CHECK(!bye_sent_, "client already said bye");
  wire::send_frame(transport_, server_rank_,
                   wire::encode_stats_request(prefix));
  while (true) {
    const std::vector<std::byte> frame = next_frame();
    switch (wire::frame_type(frame)) {
      case wire::FrameType::StatsReply:
        return wire::decode_stats_reply(frame);
      case wire::FrameType::Response: {
        // An in-flight request finished while we awaited the stats.
        Response response = wire::decode_response(frame);
        stash_.insert_or_assign(response.request_id, std::move(response));
        continue;
      }
      default:
        throw net::ProtocolError(
            "unexpected serve frame while awaiting stats");
    }
  }
}

bool ServeClient::try_collect(std::uint64_t request_id, Response& out) {
  const auto it = stash_.find(request_id);
  if (it == stash_.end()) return false;
  out = std::move(it->second);
  stash_.erase(it);
  return true;
}

}  // namespace zipflm::serve
