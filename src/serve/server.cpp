#include "zipflm/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/support/error.hpp"

namespace zipflm::serve {

/// Per-instance "<scope>/..." mirror of ServeCounters, updated at the
/// exact sites the legacy counters increment so the unified snapshot
/// and Server::counters() agree.  The registry hands back stable
/// references, so two servers sharing a scope accumulate into the same
/// metrics — that is the point of scopes: shards get "<scope>/s<k>"
/// each, while every instance can additionally double-book counters and
/// histograms into one aggregate prefix for the fleet-wide view.
struct Server::Metrics {
  /// Counter/histogram references for one name prefix.
  struct Set {
    obs::Counter* requests_admitted;
    obs::Counter* requests_rejected;
    obs::Counter* requests_completed;
    obs::Counter* requests_failed;
    obs::Counter* done_evictions;
    obs::Counter* batch_steps;
    obs::Counter* batched_streams;
    obs::Counter* tokens_generated;
    obs::Counter* context_tokens_primed;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Histogram* queue_seconds;
    obs::Histogram* token_seconds;
    obs::Histogram* request_seconds;

    Set(obs::MetricsRegistry& r, const std::string& prefix)
        : requests_admitted(&r.counter(prefix + "/requests_admitted")),
          requests_rejected(&r.counter(prefix + "/requests_rejected")),
          requests_completed(&r.counter(prefix + "/requests_completed")),
          requests_failed(&r.counter(prefix + "/requests_failed")),
          done_evictions(&r.counter(prefix + "/done_evictions")),
          batch_steps(&r.counter(prefix + "/batch_steps")),
          batched_streams(&r.counter(prefix + "/batched_streams")),
          tokens_generated(&r.counter(prefix + "/tokens_generated")),
          context_tokens_primed(
              &r.counter(prefix + "/context_tokens_primed")),
          cache_hits(&r.counter(prefix + "/cache_hits")),
          cache_misses(&r.counter(prefix + "/cache_misses")),
          queue_seconds(&r.histogram(prefix + "/queue_seconds")),
          token_seconds(&r.histogram(prefix + "/token_seconds")),
          request_seconds(&r.histogram(prefix + "/request_seconds")) {}
  };

  Set scope;
  /// Gauges are last-value semantics; double-booking them into an
  /// aggregate would make shards overwrite each other, so they stay
  /// scope-local.
  obs::Gauge& queue_depth;
  obs::Gauge& cache_evictions;
  std::optional<Set> aggregate;

  explicit Metrics(const ServeOptions& options)
      : scope(obs::MetricsRegistry::global(), options.metrics_scope),
        queue_depth(obs::MetricsRegistry::global().gauge(
            options.metrics_scope + "/queue_depth")),
        cache_evictions(obs::MetricsRegistry::global().gauge(
            options.metrics_scope + "/cache_evictions")) {
    if (!options.metrics_aggregate.empty() &&
        options.metrics_aggregate != options.metrics_scope) {
      aggregate.emplace(obs::MetricsRegistry::global(),
                        options.metrics_aggregate);
    }
  }

  void add(obs::Counter* Set::*member, std::uint64_t delta) {
    (scope.*member)->add(delta);
    if (aggregate) ((*aggregate).*member)->add(delta);
  }
  void record(obs::Histogram* Set::*member, double value) {
    (scope.*member)->record(value);
    if (aggregate) ((*aggregate).*member)->record(value);
  }
};

Server::Server(LmModel& model, ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      scheduler_(model, cache_, options_.max_batch),
      metrics_(std::make_unique<Metrics>(options_)) {
  ZIPFLM_CHECK(options_.queue_depth >= 1, "queue_depth must be at least 1");
  ZIPFLM_CHECK(options_.done_capacity >= 1,
               "done_capacity must be at least 1");
  ZIPFLM_CHECK(options_.batch_deadline_seconds >= 0.0,
               "batch deadline must be non-negative");
  ZIPFLM_CHECK(!options_.metrics_scope.empty(),
               "metrics_scope must be non-empty");
}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard lock(mutex_);
  ZIPFLM_CHECK(!started_ && !stopping_, "server already started");
  stop_requested_ = false;
  started_ = true;
  thread_ = std::thread(&Server::scheduler_loop, this);
}

void Server::stop() {
  std::thread worker;
  {
    std::unique_lock lock(mutex_);
    if (stopping_) {
      // Another stop() owns the thread handle; joining the same thread
      // twice is undefined behaviour, so wait for that stop to finish —
      // the postcondition (fully stopped) holds for both callers.
      stopped_cv_.wait(lock, [&] { return !stopping_; });
      return;
    }
    if (!started_) return;
    stopping_ = true;
    // No new work lands once we commit to stopping: flip started_
    // before the lock drops so a concurrent start() throws instead of
    // racing the join below.
    started_ = false;
    stop_requested_ = true;
    worker = std::move(thread_);
  }
  work_cv_.notify_all();
  if (worker.joinable()) worker.join();
  {
    std::lock_guard lock(mutex_);
    // Drain mode leaves nothing behind; fail-fast mode (and requests
    // that slipped in after the scheduler exited) resolve here, so
    // every accepted request holds a terminal Response from now on.
    fail_residual_locked();
    stop_requested_ = false;
    stopping_ = false;
  }
  stopped_cv_.notify_all();
  done_cv_.notify_all();
}

void Server::finish_locked(Response response) {
  const std::uint64_t id = response.request_id;
  done_.insert_or_assign(id, std::move(response));
  done_order_.push_back(id);
  while (done_.size() > options_.done_capacity) {
    // Oldest completion first.  Entries whose id is no longer in done_
    // were collected already; their order node is garbage to skip.
    ZIPFLM_ASSERT(!done_order_.empty(), "done store larger than its order");
    const std::uint64_t victim = done_order_.front();
    done_order_.pop_front();
    const auto it = done_.find(victim);
    if (it == done_.end()) continue;
    done_.erase(it);
    counters_.done_evictions += 1;
    metrics_->add(&Metrics::Set::done_evictions, 1);
  }
}

void Server::erase_done_locked(
    std::unordered_map<std::uint64_t, Response>::iterator it) {
  // O(collected) list walk, but poll()/wait() usually collect in
  // roughly completion order, so the erased node sits near the front.
  const std::uint64_t id = it->first;
  done_.erase(it);
  const auto order = std::find(done_order_.begin(), done_order_.end(), id);
  if (order != done_order_.end()) done_order_.erase(order);
}

bool Server::expired_locked(std::uint64_t request_id) const {
  return request_id != 0 && request_id < next_request_id_ &&
         done_.count(request_id) == 0 &&
         in_flight_.count(request_id) == 0 &&
         std::none_of(queue_.begin(), queue_.end(), [&](const Pending& p) {
           return p.request.request_id == request_id;
         });
}

void Server::fail_residual_locked() {
  for (FinishedRequest& fin : scheduler_.abort_active()) {
    const auto it = in_flight_.find(fin.request_id);
    ZIPFLM_ASSERT(it != in_flight_.end(), "aborted unknown request");
    Response response;
    response.request_id = fin.request_id;
    response.session_id = fin.session_id;
    response.status = ResponseStatus::FailedShutdown;
    response.tokens = std::move(fin.tokens);
    response.cache_hit = fin.cache_hit;
    response.queue_seconds = it->second.queue_seconds;
    response.total_seconds = it->second.submitted.seconds();
    in_flight_.erase(it);
    counters_.requests_failed += 1;
    metrics_->add(&Metrics::Set::requests_failed, 1);
    finish_locked(std::move(response));
  }
  while (!queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    Response response;
    response.request_id = pending.request.request_id;
    response.session_id = pending.request.session_id;
    response.status = ResponseStatus::FailedShutdown;
    response.tokens = std::move(pending.request.context);
    response.queue_seconds = pending.submitted.seconds();
    response.total_seconds = response.queue_seconds;
    counters_.requests_failed += 1;
    metrics_->add(&Metrics::Set::requests_failed, 1);
    finish_locked(std::move(response));
  }
  counters_.queue_depth = 0;
  metrics_->queue_depth.set(0.0);
  done_cv_.notify_all();
}

Admission Server::submit(Request request) {
  ZIPFLM_CHECK(!request.context.empty(), "request context must be non-empty");
  ZIPFLM_CHECK(request.new_tokens > 0, "request must ask for tokens");
  ZIPFLM_CHECK(request.context.size() + request.new_tokens <=
                   static_cast<std::size_t>(request.options.max_context),
               "context + new_tokens must fit in options.max_context");

  std::lock_guard lock(mutex_);
  Admission admission;
  if (queue_.size() >= options_.queue_depth) {
    // Backpressure: reject instead of blocking the caller.  The hint is
    // a rough service time for one queued request — but until the first
    // request completes the measured mean is zero, and a zero hint
    // invites an immediate retry storm, so fall back to the configured
    // default.
    counters_.requests_rejected += 1;
    metrics_->add(&Metrics::Set::requests_rejected, 1);
    ZIPFLM_TRACE_INSTANT("request_rejected", "queue_depth",
                         static_cast<double>(queue_.size()));
    admission.queue_depth = queue_.size();
    admission.retry_after_seconds =
        counters_.request_latency.count() > 0
            ? std::max(options_.batch_deadline_seconds,
                       counters_.request_latency.mean_seconds())
            : options_.default_retry_seconds;
    return admission;
  }

  Pending pending;
  pending.request.request_id = next_request_id_++;
  pending.request.session_id = request.session_id;
  pending.request.context = std::move(request.context);
  pending.request.new_tokens = request.new_tokens;
  pending.request.options = request.options;
  pending.request.seed = request.seed;

  admission.accepted = true;
  admission.request_id = pending.request.request_id;
  queue_.push_back(std::move(pending));
  admission.queue_depth = queue_.size();
  counters_.requests_admitted += 1;
  counters_.queue_depth = queue_.size();
  metrics_->add(&Metrics::Set::requests_admitted, 1);
  metrics_->queue_depth.set(static_cast<double>(queue_.size()));
  work_cv_.notify_one();
  return admission;
}

bool Server::admissible_queued_locked() const {
  if (!scheduler_.has_capacity()) return false;
  return std::any_of(queue_.begin(), queue_.end(), [&](const Pending& p) {
    return !scheduler_.session_active(p.request.session_id);
  });
}

bool Server::admit_locked() {
  bool any = false;
  for (auto it = queue_.begin();
       it != queue_.end() && scheduler_.has_capacity();) {
    if (scheduler_.session_active(it->request.session_id)) {
      // Per-session serialization: this request waits for the in-flight
      // stream of its session; later requests for other sessions may
      // overtake it.  Order within a session is preserved — the skip
      // leaves relative queue positions untouched.
      ++it;
      continue;
    }
    Pending pending = std::move(*it);
    it = queue_.erase(it);
    const std::uint64_t id = pending.request.request_id;
    Flight flight;
    flight.submitted = pending.submitted;
    flight.queue_seconds = pending.submitted.seconds();
    counters_.queue_latency.record(flight.queue_seconds);
    metrics_->record(&Metrics::Set::queue_seconds, flight.queue_seconds);
    const AdmitInfo info = scheduler_.admit(std::move(pending.request));
    counters_.cache_hits += info.cache_hit ? 1 : 0;
    counters_.cache_misses += info.cache_hit ? 0 : 1;
    metrics_->add(&Metrics::Set::cache_hits, info.cache_hit ? 1 : 0);
    metrics_->add(&Metrics::Set::cache_misses, info.cache_hit ? 0 : 1);
    in_flight_.emplace(id, flight);
    any = true;
  }
  if (any) {
    counters_.queue_depth = queue_.size();
    metrics_->queue_depth.set(static_cast<double>(queue_.size()));
  }
  return any;
}

void Server::scheduler_loop() {
#if ZIPFLM_TRACE
  obs::set_thread_lane("serve scheduler", 100);
#endif
  std::unique_lock lock(mutex_);
  while (true) {
    // Queued requests whose session is mid-flight are not runnable yet;
    // waking for them would spin, so the predicate asks for admissible
    // work specifically (an active batch always qualifies — stepping it
    // is what eventually unblocks the serialized requests).
    work_cv_.wait(lock, [&] {
      return stop_requested_ || scheduler_.active() > 0 ||
             admissible_queued_locked();
    });
    if (stop_requested_ &&
        (!options_.drain_on_stop ||
         (queue_.empty() && scheduler_.active() == 0))) {
      break;  // fail-fast: stop() resolves the leftovers as FailedShutdown
    }

    const bool was_idle = scheduler_.active() == 0;
    const bool admitted = admit_locked();

    // A fresh batch lingers up to the deadline for more arrivals; a
    // batch already in flight never stalls (continuous batching).
    if (was_idle && admitted && scheduler_.has_capacity() &&
        !stop_requested_ && options_.batch_deadline_seconds > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.batch_deadline_seconds));
      while (!stop_requested_ && scheduler_.has_capacity()) {
        if (!work_cv_.wait_until(lock, deadline, [&] {
              return stop_requested_ || admissible_queued_locked();
            })) {
          break;  // deadline expired
        }
        if (stop_requested_) break;
        admit_locked();
      }
    }
    if (scheduler_.active() == 0) continue;

    lock.unlock();
    StepInfo info = scheduler_.step();
    lock.lock();

    counters_.batch_steps += 1;
    counters_.batched_streams += static_cast<std::uint64_t>(info.batch);
    counters_.tokens_generated += info.sampled;
    counters_.context_tokens_primed += info.context_fed;
    counters_.cache_evictions = cache_.evictions();
    metrics_->add(&Metrics::Set::batch_steps, 1);
    metrics_->add(&Metrics::Set::batched_streams,
                  static_cast<std::uint64_t>(info.batch));
    metrics_->add(&Metrics::Set::tokens_generated, info.sampled);
    metrics_->add(&Metrics::Set::context_tokens_primed, info.context_fed);
    metrics_->cache_evictions.set(static_cast<double>(cache_.evictions()));
    for (std::size_t i = 0; i < info.sampled; ++i) {
      counters_.token_latency.record(info.seconds);
      metrics_->record(&Metrics::Set::token_seconds, info.seconds);
    }
    for (FinishedRequest& fin : info.finished) {
      const auto it = in_flight_.find(fin.request_id);
      ZIPFLM_ASSERT(it != in_flight_.end(), "finished unknown request");
      Response response;
      response.request_id = fin.request_id;
      response.session_id = fin.session_id;
      response.tokens = std::move(fin.tokens);
      response.cache_hit = fin.cache_hit;
      response.queue_seconds = it->second.queue_seconds;
      response.total_seconds = it->second.submitted.seconds();
      in_flight_.erase(it);
      counters_.requests_completed += 1;
      counters_.request_latency.record(response.total_seconds);
      metrics_->add(&Metrics::Set::requests_completed, 1);
      metrics_->record(&Metrics::Set::request_seconds,
                       response.total_seconds);
      finish_locked(std::move(response));
    }
    if (!info.finished.empty()) done_cv_.notify_all();
  }
  done_cv_.notify_all();
}

bool Server::poll(std::uint64_t request_id, Response& out) {
  std::lock_guard lock(mutex_);
  const auto it = done_.find(request_id);
  if (it == done_.end()) {
    if (!expired_locked(request_id)) return false;
    // The response existed but was evicted from the bounded store (or
    // collected already): terminal, not pending — report it as such so
    // a fire-and-forget client's late poll does not look like a hang.
    out = Response{};
    out.request_id = request_id;
    out.status = ResponseStatus::Expired;
    return true;
  }
  out = std::move(it->second);
  erase_done_locked(it);
  return true;
}

Response Server::wait(std::uint64_t request_id) {
  std::unique_lock lock(mutex_);
  ZIPFLM_CHECK(started_ || done_.count(request_id) > 0 ||
                   expired_locked(request_id),
               "wait() needs a started server");
  // While a drain is in progress (started_ already false, stopping_
  // still true) the request can still finish normally, so keep waiting;
  // only a *completed* shutdown wakes a waiter whose request never ran.
  // An evicted response also terminates the wait — otherwise a waiter
  // racing the done-store bound could sleep forever.
  done_cv_.wait(lock, [&] {
    return done_.count(request_id) > 0 || expired_locked(request_id) ||
           (!started_ && !stopping_);
  });
  const auto it = done_.find(request_id);
  if (it == done_.end()) {
    Response response;
    response.request_id = request_id;
    // Distinguish "finished but no longer retained" from "stopped
    // before it ever ran" (submitted after stop() resolved residuals).
    response.status = expired_locked(request_id)
                          ? ResponseStatus::Expired
                          : ResponseStatus::FailedShutdown;
    return response;
  }
  Response response = std::move(it->second);
  erase_done_locked(it);
  return response;
}

void Server::wait_idle() {
  std::unique_lock lock(mutex_);
  ZIPFLM_CHECK(started_ || (queue_.empty() && in_flight_.empty()),
               "wait_idle() needs a started server");
  // A completed shutdown counts as idle: stop() resolves every request.
  done_cv_.wait(lock, [&] {
    return (queue_.empty() && in_flight_.empty()) ||
           (!started_ && !stopping_);
  });
}

ServeCounters Server::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::size_t Server::queue_size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace zipflm::serve
