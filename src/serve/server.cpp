#include "zipflm/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/support/error.hpp"

namespace zipflm::serve {

namespace {

/// Global "serve/..." mirror of ServeCounters (same pattern as the comm
/// and train metrics): updated at the exact sites the legacy counters
/// increment, so the unified snapshot and Server::counters() agree.
struct ServeMetrics {
  obs::Counter& requests_admitted;
  obs::Counter& requests_rejected;
  obs::Counter& requests_completed;
  obs::Counter& requests_failed;
  obs::Counter& batch_steps;
  obs::Counter& batched_streams;
  obs::Counter& tokens_generated;
  obs::Counter& context_tokens_primed;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& cache_evictions;
  obs::Gauge& queue_depth;
  obs::Histogram& queue_seconds;
  obs::Histogram& token_seconds;
  obs::Histogram& request_seconds;

  static ServeMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static ServeMetrics m{
        r.counter("serve/requests_admitted"),
        r.counter("serve/requests_rejected"),
        r.counter("serve/requests_completed"),
        r.counter("serve/requests_failed"),
        r.counter("serve/batch_steps"),
        r.counter("serve/batched_streams"),
        r.counter("serve/tokens_generated"),
        r.counter("serve/context_tokens_primed"),
        r.counter("serve/cache_hits"),
        r.counter("serve/cache_misses"),
        r.gauge("serve/cache_evictions"),
        r.gauge("serve/queue_depth"),
        r.histogram("serve/queue_seconds"),
        r.histogram("serve/token_seconds"),
        r.histogram("serve/request_seconds"),
    };
    return m;
  }
};

}  // namespace

Server::Server(LmModel& model, ServeOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      scheduler_(model, cache_, options.max_batch) {
  ZIPFLM_CHECK(options_.queue_depth >= 1, "queue_depth must be at least 1");
  ZIPFLM_CHECK(options_.batch_deadline_seconds >= 0.0,
               "batch deadline must be non-negative");
}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard lock(mutex_);
  ZIPFLM_CHECK(!started_ && !stopping_, "server already started");
  stop_requested_ = false;
  started_ = true;
  thread_ = std::thread(&Server::scheduler_loop, this);
}

void Server::stop() {
  std::thread worker;
  {
    std::unique_lock lock(mutex_);
    if (stopping_) {
      // Another stop() owns the thread handle; joining the same thread
      // twice is undefined behaviour, so wait for that stop to finish —
      // the postcondition (fully stopped) holds for both callers.
      stopped_cv_.wait(lock, [&] { return !stopping_; });
      return;
    }
    if (!started_) return;
    stopping_ = true;
    // No new work lands once we commit to stopping: flip started_
    // before the lock drops so a concurrent start() throws instead of
    // racing the join below.
    started_ = false;
    stop_requested_ = true;
    worker = std::move(thread_);
  }
  work_cv_.notify_all();
  if (worker.joinable()) worker.join();
  {
    std::lock_guard lock(mutex_);
    // Drain mode leaves nothing behind; fail-fast mode (and requests
    // that slipped in after the scheduler exited) resolve here, so
    // every accepted request holds a terminal Response from now on.
    fail_residual_locked();
    stop_requested_ = false;
    stopping_ = false;
  }
  stopped_cv_.notify_all();
  done_cv_.notify_all();
}

void Server::fail_residual_locked() {
  for (FinishedRequest& fin : scheduler_.abort_active()) {
    const auto it = in_flight_.find(fin.request_id);
    ZIPFLM_ASSERT(it != in_flight_.end(), "aborted unknown request");
    Response response;
    response.request_id = fin.request_id;
    response.session_id = fin.session_id;
    response.status = ResponseStatus::FailedShutdown;
    response.tokens = std::move(fin.tokens);
    response.cache_hit = fin.cache_hit;
    response.queue_seconds = it->second.queue_seconds;
    response.total_seconds = it->second.submitted.seconds();
    in_flight_.erase(it);
    counters_.requests_failed += 1;
    ServeMetrics::get().requests_failed.add(1);
    done_.insert_or_assign(response.request_id, std::move(response));
  }
  while (!queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    Response response;
    response.request_id = pending.request.request_id;
    response.session_id = pending.request.session_id;
    response.status = ResponseStatus::FailedShutdown;
    response.tokens = std::move(pending.request.context);
    response.queue_seconds = pending.submitted.seconds();
    response.total_seconds = response.queue_seconds;
    counters_.requests_failed += 1;
    ServeMetrics::get().requests_failed.add(1);
    done_.insert_or_assign(response.request_id, std::move(response));
  }
  counters_.queue_depth = 0;
  ServeMetrics::get().queue_depth.set(0.0);
  done_cv_.notify_all();
}

Admission Server::submit(Request request) {
  ZIPFLM_CHECK(!request.context.empty(), "request context must be non-empty");
  ZIPFLM_CHECK(request.new_tokens > 0, "request must ask for tokens");
  ZIPFLM_CHECK(request.context.size() + request.new_tokens <=
                   static_cast<std::size_t>(request.options.max_context),
               "context + new_tokens must fit in options.max_context");

  std::lock_guard lock(mutex_);
  Admission admission;
  if (queue_.size() >= options_.queue_depth) {
    // Backpressure: reject instead of blocking the caller.  The hint is
    // a rough service time for one queued request — but until the first
    // request completes the measured mean is zero, and a zero hint
    // invites an immediate retry storm, so fall back to the configured
    // default.
    counters_.requests_rejected += 1;
    ServeMetrics::get().requests_rejected.add(1);
    ZIPFLM_TRACE_INSTANT("request_rejected", "queue_depth",
                         static_cast<double>(queue_.size()));
    admission.queue_depth = queue_.size();
    admission.retry_after_seconds =
        counters_.request_latency.count() > 0
            ? std::max(options_.batch_deadline_seconds,
                       counters_.request_latency.mean_seconds())
            : options_.default_retry_seconds;
    return admission;
  }

  Pending pending;
  pending.request.request_id = next_request_id_++;
  pending.request.session_id = request.session_id;
  pending.request.context = std::move(request.context);
  pending.request.new_tokens = request.new_tokens;
  pending.request.options = request.options;
  pending.request.seed = request.seed;

  admission.accepted = true;
  admission.request_id = pending.request.request_id;
  queue_.push_back(std::move(pending));
  admission.queue_depth = queue_.size();
  counters_.requests_admitted += 1;
  counters_.queue_depth = queue_.size();
  auto& m = ServeMetrics::get();
  m.requests_admitted.add(1);
  m.queue_depth.set(static_cast<double>(queue_.size()));
  work_cv_.notify_one();
  return admission;
}

bool Server::admit_locked() {
  bool any = false;
  auto& m = ServeMetrics::get();
  while (!queue_.empty() && scheduler_.has_capacity()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    const std::uint64_t id = pending.request.request_id;
    Flight flight;
    flight.submitted = pending.submitted;
    flight.queue_seconds = pending.submitted.seconds();
    counters_.queue_latency.record(flight.queue_seconds);
    m.queue_seconds.record(flight.queue_seconds);
    const AdmitInfo info = scheduler_.admit(std::move(pending.request));
    counters_.cache_hits += info.cache_hit ? 1 : 0;
    counters_.cache_misses += info.cache_hit ? 0 : 1;
    m.cache_hits.add(info.cache_hit ? 1 : 0);
    m.cache_misses.add(info.cache_hit ? 0 : 1);
    in_flight_.emplace(id, flight);
    any = true;
  }
  if (any) {
    counters_.queue_depth = queue_.size();
    m.queue_depth.set(static_cast<double>(queue_.size()));
  }
  return any;
}

void Server::scheduler_loop() {
#if ZIPFLM_TRACE
  obs::set_thread_lane("serve scheduler", 100);
#endif
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_requested_ || !queue_.empty() || scheduler_.active() > 0;
    });
    if (stop_requested_ &&
        (!options_.drain_on_stop ||
         (queue_.empty() && scheduler_.active() == 0))) {
      break;  // fail-fast: stop() resolves the leftovers as FailedShutdown
    }

    const bool was_idle = scheduler_.active() == 0;
    const bool admitted = admit_locked();

    // A fresh batch lingers up to the deadline for more arrivals; a
    // batch already in flight never stalls (continuous batching).
    if (was_idle && admitted && scheduler_.has_capacity() &&
        !stop_requested_ && options_.batch_deadline_seconds > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.batch_deadline_seconds));
      while (!stop_requested_ && scheduler_.has_capacity()) {
        if (!work_cv_.wait_until(lock, deadline, [&] {
              return stop_requested_ || !queue_.empty();
            })) {
          break;  // deadline expired
        }
        if (stop_requested_) break;
        admit_locked();
      }
    }
    if (scheduler_.active() == 0) continue;

    lock.unlock();
    StepInfo info = scheduler_.step();
    lock.lock();

    counters_.batch_steps += 1;
    counters_.batched_streams += static_cast<std::uint64_t>(info.batch);
    counters_.tokens_generated += info.sampled;
    counters_.context_tokens_primed += info.context_fed;
    counters_.cache_evictions = cache_.evictions();
    auto& m = ServeMetrics::get();
    m.batch_steps.add(1);
    m.batched_streams.add(static_cast<std::uint64_t>(info.batch));
    m.tokens_generated.add(info.sampled);
    m.context_tokens_primed.add(info.context_fed);
    m.cache_evictions.set(static_cast<double>(cache_.evictions()));
    for (std::size_t i = 0; i < info.sampled; ++i) {
      counters_.token_latency.record(info.seconds);
      m.token_seconds.record(info.seconds);
    }
    for (FinishedRequest& fin : info.finished) {
      const auto it = in_flight_.find(fin.request_id);
      ZIPFLM_ASSERT(it != in_flight_.end(), "finished unknown request");
      Response response;
      response.request_id = fin.request_id;
      response.session_id = fin.session_id;
      response.tokens = std::move(fin.tokens);
      response.cache_hit = fin.cache_hit;
      response.queue_seconds = it->second.queue_seconds;
      response.total_seconds = it->second.submitted.seconds();
      in_flight_.erase(it);
      counters_.requests_completed += 1;
      counters_.request_latency.record(response.total_seconds);
      m.requests_completed.add(1);
      m.request_seconds.record(response.total_seconds);
      done_.insert_or_assign(response.request_id, std::move(response));
    }
    if (!info.finished.empty()) done_cv_.notify_all();
  }
  done_cv_.notify_all();
}

bool Server::poll(std::uint64_t request_id, Response& out) {
  std::lock_guard lock(mutex_);
  const auto it = done_.find(request_id);
  if (it == done_.end()) return false;
  out = std::move(it->second);
  done_.erase(it);
  return true;
}

Response Server::wait(std::uint64_t request_id) {
  std::unique_lock lock(mutex_);
  ZIPFLM_CHECK(started_ || done_.count(request_id) > 0,
               "wait() needs a started server");
  // While a drain is in progress (started_ already false, stopping_
  // still true) the request can still finish normally, so keep waiting;
  // only a *completed* shutdown wakes a waiter whose request never ran.
  done_cv_.wait(lock, [&] {
    return done_.count(request_id) > 0 || (!started_ && !stopping_);
  });
  const auto it = done_.find(request_id);
  if (it == done_.end()) {
    // Stopped without this request reaching the scheduler (submitted
    // after stop() resolved the residuals, or waited on twice).
    Response response;
    response.request_id = request_id;
    response.status = ResponseStatus::FailedShutdown;
    return response;
  }
  Response response = std::move(it->second);
  done_.erase(it);
  return response;
}

void Server::wait_idle() {
  std::unique_lock lock(mutex_);
  ZIPFLM_CHECK(started_ || (queue_.empty() && in_flight_.empty()),
               "wait_idle() needs a started server");
  // A completed shutdown counts as idle: stop() resolves every request.
  done_cv_.wait(lock, [&] {
    return (queue_.empty() && in_flight_.empty()) ||
           (!started_ && !stopping_);
  });
}

ServeCounters Server::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

}  // namespace zipflm::serve
