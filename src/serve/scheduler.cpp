#include "zipflm/serve/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "zipflm/obs/trace.hpp"
#include "zipflm/support/error.hpp"
#include "zipflm/support/stopwatch.hpp"

namespace zipflm::serve {

BatchScheduler::BatchScheduler(LmModel& model, SessionCache& cache,
                               Index max_batch)
    : model_(model), cache_(cache), max_batch_(max_batch) {
  ZIPFLM_CHECK(max_batch >= 1, "max_batch must be at least 1");
  streams_.reserve(static_cast<std::size_t>(max_batch));
}

bool BatchScheduler::session_active(std::uint64_t session_id) const noexcept {
  for (const ActiveStream& s : streams_) {
    if (s.session_id == session_id) return true;
  }
  return false;
}

AdmitInfo BatchScheduler::admit(ScheduledRequest request) {
  ZIPFLM_CHECK(has_capacity(), "scheduler batch is full");
  ZIPFLM_CHECK(!request.context.empty(), "request context must be non-empty");
  ZIPFLM_CHECK(request.new_tokens > 0, "request must ask for tokens");
  ZIPFLM_CHECK(!session_active(request.session_id),
               "session already has an in-flight stream; duplicate admission "
               "would race the session cache");

  ActiveStream s;
  s.request_id = request.request_id;
  s.session_id = request.session_id;
  s.history = std::move(request.context);
  s.context_len = s.history.size();
  s.target_len = s.history.size() + request.new_tokens;
  s.options = request.options;
  s.rng = Rng(request.seed);

  ZIPFLM_TRACE_INSTANT("admit", "context_len",
                       static_cast<double>(s.context_len));

  AdmitInfo info;
  info.context_len = s.context_len;
  SessionEntry entry;
  if (cache_.take(s.session_id, entry) &&
      entry.history_len == s.history.size() &&
      entry.fingerprint == token_fingerprint(s.history)) {
    // Cached state covers history[0 .. n-2]; resume by feeding the
    // pending last token.
    s.state = std::move(entry.state);
    s.cursor = s.history.size() - 1;
    s.cache_hit = true;
  } else {
    // Miss (or a stale entry for this id, now discarded): replay the
    // whole context through a fresh state.
    s.state = model_.initial_state(1);
    s.cursor = 0;
  }
  info.cache_hit = s.cache_hit;
  info.resume_cursor = s.cursor;
  streams_.push_back(std::move(s));
  return info;
}

StepInfo BatchScheduler::step() {
  StepInfo info;
  const auto bsz = static_cast<Index>(streams_.size());
  if (bsz == 0) return info;
  info.batch = bsz;
  obs::SpanScope span("batch_step", "batch", static_cast<double>(bsz));

  if (batch_state_.batch() != bsz) batch_state_ = model_.initial_state(bsz);
  tokens_.resize(static_cast<std::size_t>(bsz));
  for (Index b = 0; b < bsz; ++b) {
    ActiveStream& s = streams_[static_cast<std::size_t>(b)];
    copy_state_row(s.state, 0, batch_state_, b);
    tokens_[static_cast<std::size_t>(b)] = s.history[s.cursor];
  }

  Stopwatch watch;
  model_.step(tokens_, batch_state_, logits_);

  for (Index b = 0; b < bsz; ++b) {
    ActiveStream& s = streams_[static_cast<std::size_t>(b)];
    copy_state_row(batch_state_, b, s.state, 0);
    if (s.cursor < s.context_len) ++info.context_fed;
    ++s.cursor;
    if (s.cursor < s.history.size()) continue;  // still priming

    s.history.push_back(sample_from_logits(logits_.row(b), s.options, s.rng));
    ++info.sampled;
    if (s.history.size() < s.target_len) continue;

    s.done = true;
    FinishedRequest fin;
    fin.request_id = s.request_id;
    fin.session_id = s.session_id;
    fin.tokens = s.history;
    fin.cache_hit = s.cache_hit;
    info.finished.push_back(std::move(fin));

    SessionEntry entry;
    entry.state = std::move(s.state);
    entry.last_token = s.history.back();
    entry.history_len = s.history.size();
    entry.fingerprint = token_fingerprint(s.history);
    cache_.put(s.session_id, std::move(entry));
  }
  info.seconds = watch.seconds();

  std::erase_if(streams_, [](const ActiveStream& s) { return s.done; });
  return info;
}

std::vector<FinishedRequest> BatchScheduler::abort_active() {
  std::vector<FinishedRequest> aborted;
  aborted.reserve(streams_.size());
  for (ActiveStream& s : streams_) {
    FinishedRequest fin;
    fin.request_id = s.request_id;
    fin.session_id = s.session_id;
    fin.tokens = std::move(s.history);
    fin.cache_hit = s.cache_hit;
    aborted.push_back(std::move(fin));
  }
  streams_.clear();
  return aborted;
}

}  // namespace zipflm::serve
