#include "zipflm/serve/sharded_server.hpp"

#include <algorithm>
#include <utility>

#include "zipflm/obs/metrics.hpp"
#include "zipflm/support/error.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm::serve {

ShardedServer::ShardedServer(std::vector<LmModel*> models,
                             ShardedServeOptions options)
    : options_(std::move(options)) {
  ZIPFLM_CHECK(!models.empty(), "sharded server needs at least one shard");
  ZIPFLM_CHECK(options_.route_capacity >= 1,
               "route_capacity must be at least 1");
  shards_.reserve(models.size());
  for (std::size_t k = 0; k < models.size(); ++k) {
    ZIPFLM_CHECK(models[k] != nullptr, "shard model must be non-null");
    ServeOptions shard_options = options_.server;
    // Shard-scoped metrics plus the fleet aggregate under the base
    // scope — the base names stay byte-identical to a single Server's.
    shard_options.metrics_scope =
        options_.server.metrics_scope + "/s" + std::to_string(k);
    shard_options.metrics_aggregate = options_.server.metrics_scope;
    shards_.push_back(
        std::make_unique<Server>(*models[k], std::move(shard_options)));
  }
  steals_counter_ = &obs::MetricsRegistry::global().counter(
      options_.server.metrics_scope + "/steals");
}

ShardedServer::~ShardedServer() { stop(); }

void ShardedServer::start() {
  for (auto& shard : shards_) shard->start();
}

void ShardedServer::stop() {
  for (auto& shard : shards_) shard->stop();
}

std::size_t ShardedServer::home_shard(
    std::uint64_t session_id) const noexcept {
  // SplitMix64 whitens adjacent session ids (1, 2, 3, ...) into
  // uncorrelated shard picks; a plain modulo would stripe hot Zipf-head
  // sessions onto the low shards.
  SplitMix64 mix(session_id);
  return static_cast<std::size_t>(mix.next() % shards_.size());
}

std::size_t ShardedServer::routed_shard_locked(std::uint64_t session_id) {
  const auto it = routes_.find(session_id);
  if (it == routes_.end()) return shards_.size();
  route_lru_.splice(route_lru_.end(), route_lru_, it->second.lru);
  return it->second.shard;
}

void ShardedServer::pin_route_locked(std::uint64_t session_id,
                                     std::size_t shard) {
  const auto it = routes_.find(session_id);
  if (it != routes_.end()) {
    it->second.shard = shard;
    route_lru_.splice(route_lru_.end(), route_lru_, it->second.lru);
    return;
  }
  route_lru_.push_back(session_id);
  routes_.emplace(session_id, Route{shard, std::prev(route_lru_.end())});
  while (routes_.size() > options_.route_capacity) {
    const std::uint64_t victim = route_lru_.front();
    route_lru_.pop_front();
    routes_.erase(victim);
  }
}

std::size_t ShardedServer::shard_of(std::uint64_t session_id) const {
  std::lock_guard lock(router_mutex_);
  const auto it = routes_.find(session_id);
  return it != routes_.end() ? it->second.shard : home_shard(session_id);
}

Admission ShardedServer::submit(Request request) {
  std::size_t target;
  bool cold;
  {
    std::lock_guard lock(router_mutex_);
    target = routed_shard_locked(request.session_id);
    cold = target == shards_.size();
    if (cold) target = home_shard(request.session_id);
  }

  if (cold && options_.work_stealing && shards_.size() > 1 &&
      shards_[target]->queue_size() >= options_.server.queue_depth) {
    // Home shard would reject.  A cold session has no cache entry to
    // stay close to, so place it on the shallowest queue instead —
    // checked BEFORE submitting so the home shard's rejection counter
    // only counts rejections stealing could not avert.
    std::size_t best = target;
    std::size_t best_depth = shards_[target]->queue_size();
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const std::size_t depth = shards_[k]->queue_size();
      if (depth < best_depth) {
        best = k;
        best_depth = depth;
      }
    }
    if (best != target) {
      target = best;
      steals_counter_->add();
      std::lock_guard lock(router_mutex_);
      steals_ += 1;
    }
  }

  const std::uint64_t session_id = request.session_id;
  Admission admission = shards_[target]->submit(std::move(request));
  if (admission.accepted) {
    // Translate to the self-routing global id and pin the session to
    // the shard that now owns its (future) cache entry.
    admission.request_id =
        admission.request_id * shards_.size() + target;
    std::lock_guard lock(router_mutex_);
    pin_route_locked(session_id, target);
  }
  return admission;
}

bool ShardedServer::poll(std::uint64_t request_id, Response& out) {
  if (request_id < shards_.size()) return false;  // never issued
  const std::size_t shard =
      static_cast<std::size_t>(request_id % shards_.size());
  if (!shards_[shard]->poll(request_id / shards_.size(), out)) return false;
  out.request_id = request_id;
  return true;
}

Response ShardedServer::wait(std::uint64_t request_id) {
  ZIPFLM_CHECK(request_id >= shards_.size(),
               "wait() on a request id this server never issued");
  const std::size_t shard =
      static_cast<std::size_t>(request_id % shards_.size());
  Response response = shards_[shard]->wait(request_id / shards_.size());
  response.request_id = request_id;
  return response;
}

void ShardedServer::wait_idle() {
  for (auto& shard : shards_) shard->wait_idle();
}

std::size_t ShardedServer::shard_queue_size(std::size_t shard) const {
  ZIPFLM_CHECK(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->queue_size();
}

ServeCounters ShardedServer::counters() const {
  ServeCounters total;
  for (const auto& shard : shards_) total += shard->counters();
  return total;
}

ServeCounters ShardedServer::shard_counters(std::size_t shard) const {
  ZIPFLM_CHECK(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->counters();
}

std::uint64_t ShardedServer::steals() const {
  std::lock_guard lock(router_mutex_);
  return steals_;
}

}  // namespace zipflm::serve
