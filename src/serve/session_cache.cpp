#include "zipflm/serve/session_cache.hpp"

namespace zipflm::serve {

std::uint64_t token_fingerprint(std::span<const Index> tokens) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (const Index t : tokens) {
    auto v = static_cast<std::uint64_t>(t);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xFFULL;
      h *= 0x100000001B3ULL;  // FNV prime
    }
  }
  return h;
}

SessionCache::SessionCache(std::size_t capacity) : capacity_(capacity) {}

bool SessionCache::take(std::uint64_t session_id, SessionEntry& out) {
  const auto it = map_.find(session_id);
  if (it == map_.end()) return false;
  out = std::move(it->second->second);
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void SessionCache::put(std::uint64_t session_id, SessionEntry entry) {
  if (capacity_ == 0) return;
  if (const auto it = map_.find(session_id); it != map_.end()) {
    lru_.erase(it->second);
    map_.erase(it);
  }
  lru_.emplace_front(session_id, std::move(entry));
  map_[session_id] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace zipflm::serve
