#include "zipflm/serve/socket_frontend.hpp"

#include <map>
#include <span>
#include <string>
#include <utility>

#include "zipflm/obs/metrics.hpp"
#include "zipflm/support/error.hpp"

namespace zipflm::serve {
namespace {

/// Event-loop slice: long enough that an idle loop costs no CPU to
/// speak of, short enough that a response pushed by a shard thread
/// reaches the wire within a millisecond.
constexpr double kProgressSliceSeconds = 500e-6;

}  // namespace

SocketFrontend::SocketFrontend(net::Transport& transport,
                               ShardedServer& server)
    : transport_(transport), server_(server) {
  for (int rank = 0; rank < transport_.world_size(); ++rank) {
    if (rank == transport_.rank()) continue;
    peers_.emplace(rank, Peer{});
  }
}

void SocketFrontend::run() {
  while (!drained()) {
    for (auto& [rank, peer] : peers_) {
      pump_recv(rank, peer);
      reap_sends(peer);
      collect_responses(rank, peer);
    }
    transport_.progress(kProgressSliceSeconds);
  }
}

bool SocketFrontend::drained() const {
  for (const auto& [rank, peer] : peers_) {
    if (!peer.gone || !peer.sends.empty() || !peer.outstanding.empty()) {
      return false;
    }
  }
  return true;
}

void SocketFrontend::pump_recv(int rank, Peer& peer) {
  if (peer.gone) return;
  // Keep exactly one recv posted per peer, alternating length prefix
  // and payload; handle every frame that has fully arrived.
  while (true) {
    if (!peer.pending_recv.valid()) {
      if (peer.reading_body) {
        peer.pending_recv = transport_.recv(
            rank, std::span(peer.body.data(), peer.body.size()));
      } else {
        peer.pending_recv = transport_.recv(
            rank, std::span(reinterpret_cast<std::byte*>(&peer.header),
                            sizeof(peer.header)));
      }
    }
    if (!peer.pending_recv.done()) return;
    try {
      peer.pending_recv.wait();  // non-blocking once done; rethrows failure
    } catch (const net::TransportError&) {
      // Peer died mid-stream: stop reading it.  Its admitted requests
      // still drain through the server; collect_responses() discards
      // the replies.
      peer.gone = true;
      peer.sends.clear();
      peer.pending_recv = net::Completion();
      return;
    }
    peer.pending_recv = net::Completion();
    if (!peer.reading_body) {
      if (peer.header == 0 || peer.header > wire::kMaxFrameBytes) {
        throw net::ProtocolError("serve frame length " +
                                 std::to_string(peer.header) +
                                 " out of range");
      }
      peer.body.assign(static_cast<std::size_t>(peer.header), std::byte{});
      peer.reading_body = true;
      continue;
    }
    peer.reading_body = false;
    handle_frame(rank, peer);
    if (peer.gone) return;
  }
}

void SocketFrontend::handle_frame(int rank, Peer& peer) {
  stats_.frames_received += 1;
  switch (wire::frame_type(peer.body)) {
    case wire::FrameType::Submit: {
      stats_.submits += 1;
      const Admission admission =
          server_.submit(wire::decode_submit(peer.body));
      if (admission.accepted) {
        stats_.accepts += 1;
        peer.outstanding.push_back(admission.request_id);
      } else {
        stats_.rejects += 1;
      }
      push_frame(rank, peer, wire::encode_admission(admission));
      return;
    }
    case wire::FrameType::StatsRequest: {
      // Live introspection: ship the registry (filtered by the
      // requested prefix) straight off the event loop — snapshotting
      // is lock-light and the reply rides the normal send queue.
      stats_.stats_requests += 1;
      const std::string prefix = wire::decode_stats_request(peer.body);
      obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
      if (!prefix.empty()) {
        const auto keep = [&](const std::string& name) {
          return name.compare(0, prefix.size(), prefix) == 0;
        };
        std::erase_if(snap.counters,
                      [&](const auto& kv) { return !keep(kv.first); });
        std::erase_if(snap.gauges,
                      [&](const auto& kv) { return !keep(kv.first); });
        std::erase_if(snap.histograms,
                      [&](const auto& kv) { return !keep(kv.first); });
      }
      push_frame(rank, peer, wire::encode_stats_reply(snap));
      return;
    }
    case wire::FrameType::Bye:
      peer.gone = true;
      return;
    case wire::FrameType::Admission:
    case wire::FrameType::Response:
    case wire::FrameType::StatsReply:
      throw net::ProtocolError(
          "client sent a server-only serve frame (type " +
          std::to_string(static_cast<int>(peer.body.front())) + ") from rank " +
          std::to_string(rank));
  }
}

void SocketFrontend::push_frame(int rank, Peer& peer,
                                std::vector<std::byte> payload) {
  if (peer.gone) return;
  OutFrame frame;
  frame.length = payload.size();
  frame.payload = std::move(payload);
  peer.sends.push_back(std::move(frame));
  // Deque nodes never move, so the length and payload addresses stay
  // stable until reap_sends() observes both completions.
  OutFrame& queued = peer.sends.back();
  queued.header = transport_.send(
      rank, std::span(reinterpret_cast<const std::byte*>(&queued.length),
                      sizeof(queued.length)));
  queued.body = transport_.send(
      rank, std::span(queued.payload.data(), queued.payload.size()));
}

void SocketFrontend::reap_sends(Peer& peer) {
  while (!peer.sends.empty() && peer.sends.front().header.done() &&
         peer.sends.front().body.done()) {
    try {
      peer.sends.front().header.wait();
      peer.sends.front().body.wait();
      stats_.frames_sent += 1;
    } catch (const net::TransportError&) {
      peer.gone = true;
      peer.sends.clear();
      return;
    }
    peer.sends.pop_front();
  }
}

void SocketFrontend::collect_responses(int rank, Peer& peer) {
  for (std::size_t i = 0; i < peer.outstanding.size();) {
    Response response;
    if (!server_.poll(peer.outstanding[i], response)) {
      ++i;
      continue;
    }
    peer.outstanding.erase(peer.outstanding.begin() +
                           static_cast<std::ptrdiff_t>(i));
    if (peer.gone) {
      stats_.orphaned_responses += 1;
      continue;
    }
    push_frame(rank, peer, wire::encode_response(response));
  }
}

}  // namespace zipflm::serve
