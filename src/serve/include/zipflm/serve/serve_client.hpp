// Blocking client for the serve socket frontend.
//
// One client owns one transport endpoint (it is the endpoint's single
// driving thread) and talks to the frontend at `server_rank` with the
// wire.hpp frames.  submit() blocks until the Admission reply;
// wait() blocks until the request's Response frame arrives.  The
// frontend pushes responses as they finish, so frames can arrive out
// of order relative to what this client is blocked on — anything else
// that shows up meanwhile is stashed and handed out by a later
// wait()/try_collect().
//
// Not thread-safe: wrap calls in a caller-side mutex to share a client,
// or give each thread its own endpoint (its own rank in the world).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "zipflm/net/transport.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/serve/server.hpp"

namespace zipflm::serve {

class ServeClient {
 public:
  /// `transport` outlives the client; `server_rank` is the frontend's
  /// rank in the shared world (0 by convention).
  explicit ServeClient(net::Transport& transport, int server_rank = 0);

  /// Send one request and block for its admission decision.
  Admission submit(const Request& request);

  /// Block until `request_id`'s response arrives (or was stashed).
  Response wait(std::uint64_t request_id);

  /// Non-blocking: only checks the stash of already-arrived responses.
  bool try_collect(std::uint64_t request_id, Response& out);

  /// Pull the frontend's live metrics registry, filtered to names
  /// starting with `prefix` ("" = everything).  Blocks for the
  /// StatsReply; Response frames that arrive meanwhile are stashed
  /// like any other out-of-order frame.
  obs::MetricsSnapshot stats(const std::string& prefix = "");

  /// Tell the frontend this client is finished.  Idempotent; also sent
  /// by the destructor.  No submit()/wait() afterwards.
  void bye();

  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

 private:
  /// Receive one frame; Response frames for other requests go to the
  /// stash, everything unexpected is a ProtocolError.
  std::vector<std::byte> next_frame();

  net::Transport& transport_;
  int server_rank_;
  std::unordered_map<std::uint64_t, Response> stash_;
  bool bye_sent_ = false;
};

}  // namespace zipflm::serve
