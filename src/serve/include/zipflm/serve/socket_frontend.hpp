// Socket serving frontend: one event-loop thread that multiplexes
// every connected client over a zipflm::net::Transport and feeds the
// sharded server.
//
// Topology reuses the PR 6 rendezvous protocol unchanged: the serving
// process and its clients form one net world (server = rank 0 by
// convention, clients = the remaining ranks), joined over UNIX-domain
// or TCP sockets — or a socketpair_mesh for in-process tests.  The
// Hello handshake (magic / world / rank) therefore guards the serving
// port exactly as it guards the collectives.
//
// The loop never blocks on any single peer: it drives
// Transport::progress() in sub-millisecond slices, advances a per-peer
// header/body receive state machine, submits decoded requests to the
// ShardedServer (replying with the Admission frame immediately), and
// pushes each Response frame to its submitting peer as the shards
// finish — clients just read, no poll round-trips.  A peer that sends
// Bye (or dies) stops being read; its in-flight requests still drain
// through the server, their responses discarded.
//
// run() returns once every peer said Bye (or died) and every pushed
// response has left the send buffers.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "zipflm/net/transport.hpp"
#include "zipflm/serve/sharded_server.hpp"
#include "zipflm/serve/wire.hpp"

namespace zipflm::serve {

struct FrontendStats {
  std::uint64_t frames_received = 0;  ///< Submit + Bye + Stats decoded
  std::uint64_t frames_sent = 0;      ///< Admission/Response/StatsReply
  std::uint64_t submits = 0;
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;
  std::uint64_t stats_requests = 0;  ///< live-introspection pulls served
  std::uint64_t orphaned_responses = 0;  ///< peer gone before its reply
};

class SocketFrontend {
 public:
  /// `transport` and `server` outlive the frontend; the server must be
  /// started.  The frontend becomes the transport's single driving
  /// thread — nothing else may send or receive on it while run() is
  /// live.
  SocketFrontend(net::Transport& transport, ShardedServer& server);

  /// Serve until every peer disconnects.  Blocking; call on a
  /// dedicated thread.
  void run();

  const FrontendStats& stats() const noexcept { return stats_; }

 private:
  struct OutFrame {
    std::uint64_t length = 0;
    std::vector<std::byte> payload;
    net::Completion header;
    net::Completion body;
  };
  struct Peer {
    bool gone = false;     ///< said Bye, or its connection died
    bool reading_body = false;
    std::uint64_t header = 0;        ///< length-prefix receive buffer
    std::vector<std::byte> body;     ///< payload receive buffer
    net::Completion pending_recv;
    std::deque<OutFrame> sends;      ///< buffers pinned until flushed
    std::vector<std::uint64_t> outstanding;  ///< admitted request ids
  };

  void pump_recv(int rank, Peer& peer);
  void handle_frame(int rank, Peer& peer);
  void push_frame(int rank, Peer& peer, std::vector<std::byte> payload);
  void reap_sends(Peer& peer);
  void collect_responses(int rank, Peer& peer);
  bool drained() const;

  net::Transport& transport_;
  ShardedServer& server_;
  std::unordered_map<int, Peer> peers_;
  FrontendStats stats_;
};

}  // namespace zipflm::serve
