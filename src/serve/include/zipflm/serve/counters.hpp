// Serving-side instrumentation: latency histograms and throughput
// counters, snapshotted by Server::counters().
#pragma once

#include <cstdint>

#include "zipflm/stats/latency.hpp"

namespace zipflm::serve {

/// Plain value type; the Server mutates one instance under its lock and
/// hands out copies, so readers never race the scheduler loop.
struct ServeCounters {
  /// Latency of the batched step that produced each sampled token.
  LatencyHistogram token_latency;
  /// Submit-to-finish latency per completed request.
  LatencyHistogram request_latency;
  /// Time each admitted request spent in the admission queue (submit to
  /// scheduler admit) — the backpressure signal queue_depth thresholds.
  LatencyHistogram queue_latency;

  /// Requests sitting in the admission queue right now (refreshed on
  /// every submit/admit transition).
  std::uint64_t queue_depth = 0;

  std::uint64_t batch_steps = 0;       ///< batched forward steps executed
  std::uint64_t batched_streams = 0;   ///< sum of batch sizes over steps
  std::uint64_t tokens_generated = 0;  ///< tokens sampled
  std::uint64_t context_tokens_primed = 0;  ///< context tokens fed (cache
                                            ///< misses pay these)

  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_rejected = 0;  ///< backpressure (queue full)
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_failed = 0;  ///< resolved FailedShutdown by stop()

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  /// Finished responses evicted from the bounded completed-response
  /// store before any poll()/wait() collected them — the footprint a
  /// fire-and-forget client used to leak, now surfaced instead.
  std::uint64_t done_evictions = 0;

  /// Mean streams advanced per batched step — the batching win.
  double mean_batch_occupancy() const noexcept {
    return batch_steps == 0 ? 0.0
                            : static_cast<double>(batched_streams) /
                                  static_cast<double>(batch_steps);
  }

  /// Fold another instance's counters in — the sharded server's
  /// aggregate view.  Histograms merge observation-exact; queue_depth
  /// sums to "requests queued across all shards right now".
  ServeCounters& operator+=(const ServeCounters& other) {
    token_latency += other.token_latency;
    request_latency += other.request_latency;
    queue_latency += other.queue_latency;
    queue_depth += other.queue_depth;
    batch_steps += other.batch_steps;
    batched_streams += other.batched_streams;
    tokens_generated += other.tokens_generated;
    context_tokens_primed += other.context_tokens_primed;
    requests_admitted += other.requests_admitted;
    requests_rejected += other.requests_rejected;
    requests_completed += other.requests_completed;
    requests_failed += other.requests_failed;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
    done_evictions += other.done_evictions;
    return *this;
  }
};

}  // namespace zipflm::serve
