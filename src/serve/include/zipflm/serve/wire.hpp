// Serve wire protocol: length-prefixed frames carrying the Server's
// submit/admission/response types over a zipflm::net::Transport.
//
// Every frame crosses the transport as TWO messages — an 8-byte
// little-endian length, then `length` payload bytes whose first byte is
// the frame type.  Two messages (not one) because the inproc backend
// matches receives to whole messages of an exact posted size: the
// receiver cannot know the payload size before reading the prefix.
// Over sockets the pair coalesces into one stream write anyway.
//
// Field encoding is fixed-width little-endian (the same
// same-architecture assumption the rendezvous Hello already makes);
// a malformed frame surfaces as net::ProtocolError, never as a
// mis-parsed request.
//
//   Submit       (client -> server): session_id, new_tokens, seed,
//                                    generate options, context tokens
//   Admission    (server -> client): accepted, request_id, queue_depth,
//                                    retry_after_seconds
//   Response     (server -> client): the full serve::Response
//   Bye          (client -> server): no body; peer will submit no more
//   StatsRequest (client -> server): metric-name prefix filter
//   StatsReply   (server -> client): the frontend's MetricsRegistry
//                                    snapshot (full histogram buckets,
//                                    encoded by net::telemetry) — live
//                                    introspection for zipflm_top
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "zipflm/net/transport.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/serve/server.hpp"

namespace zipflm::serve::wire {

enum class FrameType : std::uint8_t {
  Submit = 1,
  Admission = 2,
  Response = 3,
  Bye = 4,
  StatsRequest = 5,
  StatsReply = 6,
};

/// Frames larger than this are rejected as protocol violations before
/// any allocation — a garbage length prefix must not look like a
/// gigabyte request.
inline constexpr std::uint64_t kMaxFrameBytes = 1u << 24;  // 16 MiB

/// Payload bytes (type byte included, length prefix not).
std::vector<std::byte> encode_submit(const Request& request);
std::vector<std::byte> encode_admission(const Admission& admission);
std::vector<std::byte> encode_response(const Response& response);
std::vector<std::byte> encode_bye();
std::vector<std::byte> encode_stats_request(const std::string& prefix);
std::vector<std::byte> encode_stats_reply(const obs::MetricsSnapshot& snap);

/// Type of an already-received payload.  Throws net::ProtocolError on
/// an empty payload or unknown type byte.
FrameType frame_type(const std::vector<std::byte>& payload);

/// Strict decoders: the payload must carry the matching type byte and
/// exactly the advertised field bytes (net::ProtocolError otherwise).
Request decode_submit(const std::vector<std::byte>& payload);
Admission decode_admission(const std::vector<std::byte>& payload);
Response decode_response(const std::vector<std::byte>& payload);
std::string decode_stats_request(const std::vector<std::byte>& payload);
obs::MetricsSnapshot decode_stats_reply(const std::vector<std::byte>& payload);

/// Blocking convenience used by the client (and tests): send/receive
/// one length-prefixed frame through `transport` to/from `peer`.
void send_frame(net::Transport& transport, int peer,
                const std::vector<std::byte>& payload);
std::vector<std::byte> recv_frame(net::Transport& transport, int peer);

}  // namespace zipflm::serve::wire
