// Dynamic micro-batching: coalesce the next token of every active
// session into one batched forward step.
//
// Each active stream owns a batch-1 RecurrentState; before a step the
// scheduler gathers the active rows into one [B x dim] batch state,
// advances all streams with a single LmModel::step(), and scatters the
// rows back.  Because the tensor kernels are bitwise row-independent,
// every stream's tokens are identical to what a batch-1 generation with
// the same seed would produce — batching changes throughput, never
// output.
//
// Not thread-safe: the Server's scheduler thread is the only caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/serve/session_cache.hpp"
#include "zipflm/support/rng.hpp"

namespace zipflm::serve {

/// An admitted request, ready to become an active stream.
struct ScheduledRequest {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::vector<Index> context;    ///< full history so far (client-tracked)
  std::size_t new_tokens = 0;    ///< tokens to generate
  GenerateOptions options;
  std::uint64_t seed = 0;        ///< per-request sampling stream
};

struct AdmitInfo {
  bool cache_hit = false;
  std::size_t context_len = 0;
  std::size_t resume_cursor = 0;  ///< first token index actually fed
};

struct FinishedRequest {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::vector<Index> tokens;  ///< context + generated continuation
  bool cache_hit = false;
};

/// What one batched step did — the Server folds this into ServeCounters
/// under its own lock, so the scheduler never touches shared state.
struct StepInfo {
  Index batch = 0;               ///< streams advanced
  std::size_t context_fed = 0;   ///< priming tokens consumed
  std::size_t sampled = 0;       ///< new tokens sampled
  double seconds = 0.0;          ///< wall time of the batched step
  std::vector<FinishedRequest> finished;
};

class BatchScheduler {
 public:
  /// `cache` outlives the scheduler; `max_batch` bounds concurrent
  /// streams (>= 1).
  BatchScheduler(LmModel& model, SessionCache& cache, Index max_batch);

  std::size_t active() const noexcept { return streams_.size(); }
  bool has_capacity() const noexcept {
    return active() < static_cast<std::size_t>(max_batch_);
  }

  /// True while a stream for `session_id` is in flight.  Admitting a
  /// second request for an active session is a bug: both would take()
  /// the cache (the loser replays O(history)) and the later finisher
  /// clobbers the entry with a fingerprint the other request diverged
  /// from.  The Server serializes per session against this predicate.
  bool session_active(std::uint64_t session_id) const noexcept;

  /// Activate a request.  Resumes from the session cache when the
  /// cached history matches the request's context exactly; otherwise
  /// replays the context from token 0.  Requires has_capacity() and
  /// !session_active(request.session_id).
  AdmitInfo admit(ScheduledRequest request);

  /// Advance every active stream by one token in a single batched
  /// forward step.  No-op (batch 0) when nothing is active.
  StepInfo step();

  /// Deactivate every stream without finishing it, returning what each
  /// had produced so far (context + partial continuation).  Nothing is
  /// written back to the session cache — an aborted stream's state is
  /// incomplete.  The server uses this for fail-fast shutdown.
  std::vector<FinishedRequest> abort_active();

 private:
  struct ActiveStream {
    std::uint64_t request_id = 0;
    std::uint64_t session_id = 0;
    std::vector<Index> history;   ///< context + sampled so far
    std::size_t context_len = 0;  ///< prefix that came from the request
    std::size_t target_len = 0;   ///< finished when history reaches this
    std::size_t cursor = 0;       ///< tokens fed into `state` so far
    GenerateOptions options;
    Rng rng;
    RecurrentState state;         ///< batch-1 recurrent state
    bool cache_hit = false;
    bool done = false;
  };

  LmModel& model_;
  SessionCache& cache_;
  Index max_batch_;
  std::vector<ActiveStream> streams_;
  RecurrentState batch_state_;  ///< gathered [B x dim] working state
  Tensor logits_;               ///< [B x vocab] step output
  std::vector<Index> tokens_;   ///< [B] step input
};

}  // namespace zipflm::serve
