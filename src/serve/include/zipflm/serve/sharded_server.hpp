// Sharded serving: N independent Server instances (each with its own
// model replica, session cache, and scheduler thread) behind one
// submit/poll/wait facade.
//
// Routing: a session's first request hashes (SplitMix64) to its home
// shard; the admitting shard is then pinned in a bounded LRU route
// table, so every follow-up request of a warm session lands where its
// cache entry lives.  Cold sessions may be *stolen* to the least-loaded
// shard when the home shard's admission queue is full — a cold session
// has no cache affinity yet, so placement is free.  Warm sessions are
// never stolen: moving one trades an O(1) resume for an O(history)
// replay, which is exactly the load amplification stealing is supposed
// to avoid.  A route pin evicted under LRU pressure only costs a
// re-hash (worst case: one cache-miss replay on the home shard) — it
// can never produce wrong tokens, because every shard replays any
// context it has no cached state for.
//
// Because each shard *is* a PR-1 Server, a single-shard ShardedServer
// is token-bitwise identical to the plain Server, and per-session
// serialization inside each shard carries over unchanged (a pinned
// session's requests all serialize on one shard).
//
// Request ids are globally unique and self-routing:
//   global_id = shard_local_id * shard_count + shard_index
// so poll()/wait() decode the owning shard with one modulo and no
// shared map.  Local ids start at 1, hence every global id >= shard
// count (and != 0, keeping "0 is never a valid id").
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "zipflm/serve/server.hpp"

namespace zipflm::obs {
class Counter;
}

namespace zipflm::serve {

struct ShardedServeOptions {
  /// Per-shard Server configuration.  metrics_scope is treated as the
  /// *base*: shard k publishes under "<metrics_scope>/s<k>/..." and
  /// counters/histograms also aggregate under "<metrics_scope>/...",
  /// matching the single-server names byte for byte.
  ServeOptions server;
  /// Bound on the session -> shard pin table (LRU).  Eviction costs a
  /// re-hash, never correctness; size it like cache_capacity * shards.
  std::size_t route_capacity = 1024;
  /// Redirect cold sessions away from a full home shard to the shard
  /// with the shallowest admission queue.
  bool work_stealing = true;
};

class ShardedServer {
 public:
  /// One model replica per shard (a model is not concurrently usable,
  /// and each shard runs its own scheduler thread).  All replicas must
  /// hold identical weights or routing would change tokens.  Models
  /// outlive the server.
  ShardedServer(std::vector<LmModel*> models, ShardedServeOptions options);
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  void start();  ///< start every shard's scheduler thread
  void stop();   ///< stop every shard (drain semantics per ServeOptions)

  /// Route and admit.  The returned request_id is global (decodes to
  /// the owning shard); queue_depth is the admitting shard's queue.
  Admission submit(Request request);

  /// Delegate to the owning shard (decoded from the id).  Ids below
  /// shard count were never issued: poll returns false, wait throws.
  bool poll(std::uint64_t request_id, Response& out);
  Response wait(std::uint64_t request_id);

  void wait_idle();  ///< all shards idle

  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Where a request for `session_id` would be admitted right now
  /// (pin if routed before, home hash otherwise — ignores stealing).
  std::size_t shard_of(std::uint64_t session_id) const;
  /// Admission-queue depth of one shard — the soak bench's per-shard
  /// load signal.
  std::size_t shard_queue_size(std::size_t shard) const;

  ServeCounters counters() const;  ///< sum over shards
  ServeCounters shard_counters(std::size_t shard) const;
  /// Cold-session admissions redirected off their home shard.
  std::uint64_t steals() const;

  const ShardedServeOptions& options() const noexcept { return options_; }

 private:
  std::size_t home_shard(std::uint64_t session_id) const noexcept;
  /// Look up the pin for `session_id`, refreshing its LRU position
  /// (router_mutex_ held).  Returns shard_count() when unrouted.
  std::size_t routed_shard_locked(std::uint64_t session_id);
  /// Pin `session_id` to `shard`, evicting the stalest pin over
  /// capacity (router_mutex_ held).
  void pin_route_locked(std::uint64_t session_id, std::size_t shard);

  ShardedServeOptions options_;
  std::vector<std::unique_ptr<Server>> shards_;

  mutable std::mutex router_mutex_;
  /// session -> (shard, position in route_lru_); LRU front = stalest.
  struct Route {
    std::size_t shard;
    std::list<std::uint64_t>::iterator lru;
  };
  std::unordered_map<std::uint64_t, Route> routes_;
  std::list<std::uint64_t> route_lru_;
  std::uint64_t steals_ = 0;
  /// Registry mirror of steals_ ("<metrics_scope>/steals") so stats
  /// pulls and snapshots see routing pressure without a facade call.
  obs::Counter* steals_counter_ = nullptr;
};

}  // namespace zipflm::serve
