// Server facade: bounded admission queue with explicit backpressure in
// front of the batching scheduler, run on a dedicated scheduler thread.
//
// Protocol: submit() either rejects immediately (queue full — the
// Admission carries a retry hint) or returns a request id; poll() or
// wait() collect the finished Response.  A request's `context` is the
// full client-tracked history of its session; re-submitting a session's
// previous output as the next context lets the session cache skip the
// O(history) replay.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/serve/counters.hpp"
#include "zipflm/serve/scheduler.hpp"
#include "zipflm/serve/session_cache.hpp"
#include "zipflm/support/stopwatch.hpp"

namespace zipflm::serve {

struct ServeOptions {
  Index max_batch = 16;           ///< concurrent streams per step
  std::size_t queue_depth = 64;   ///< admission queue bound
  std::size_t cache_capacity = 64;  ///< sessions kept warm (LRU)
  /// How long a fresh, non-full batch waits for more arrivals before
  /// stepping — the latency cost paid for occupancy.
  double batch_deadline_seconds = 200e-6;
  /// stop() semantics: drain (finish every queued and in-flight request)
  /// or fail them immediately with ResponseStatus::FailedShutdown.
  bool drain_on_stop = true;
  /// Backpressure retry hint handed out until at least one request has
  /// completed — before that the measured mean latency is meaningless
  /// (zero), and a zero hint tells clients to hammer a full queue.
  double default_retry_seconds = 0.05;
};

struct Request {
  std::uint64_t session_id = 0;
  std::vector<Index> context;  ///< full session history, non-empty
  std::size_t new_tokens = 0;  ///< > 0; context + new_tokens must fit
                               ///< in options.max_context
  GenerateOptions options;
  std::uint64_t seed = 0;      ///< per-request sampling stream
};

struct Admission {
  bool accepted = false;
  std::uint64_t request_id = 0;  ///< valid when accepted
  std::size_t queue_depth = 0;   ///< queued requests after this decision
  double retry_after_seconds = 0.0;  ///< backoff hint when rejected
};

/// Terminal state of a request.  Every accepted request reaches exactly
/// one of these; a stopped server never leaves a waiter hanging.
enum class ResponseStatus : std::uint8_t {
  Ok,              ///< generated all requested tokens
  FailedShutdown,  ///< server stopped before the request finished
};

struct Response {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  ResponseStatus status = ResponseStatus::Ok;
  std::vector<Index> tokens;  ///< context + generated continuation
  bool cache_hit = false;     ///< session resumed from cache
  double queue_seconds = 0.0;  ///< submit -> first scheduled
  double total_seconds = 0.0;  ///< submit -> finished
};

class Server {
 public:
  /// `model` outlives the server and must not be used concurrently
  /// elsewhere while the server runs.
  Server(LmModel& model, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the scheduler thread.  submit() before start() is allowed;
  /// queued work runs once started.
  void start();

  /// Shut the scheduler thread down and join it.  With drain_on_stop
  /// (the default) every queued and in-flight request finishes first;
  /// otherwise they complete immediately with FailedShutdown.  Either
  /// way, every accepted request holds a terminal Response when stop()
  /// returns.  Safe to call concurrently and repeatedly: exactly one
  /// caller joins the thread, the rest block until shutdown completes.
  void stop();

  /// Non-blocking admission.  Throws ConfigError on malformed requests
  /// (empty context, zero new_tokens, context + new_tokens exceeding
  /// options.max_context); returns accepted == false under backpressure.
  Admission submit(Request request);

  /// Non-blocking: moves the response out when finished.
  bool poll(std::uint64_t request_id, Response& out);

  /// Block until `request_id` reaches a terminal state.  Requires a
  /// started server (or an already-finished request).  If the server
  /// stops before the request finishes, returns a FailedShutdown
  /// response instead of hanging forever.
  Response wait(std::uint64_t request_id);

  /// Block until no request is queued or in flight, or the server
  /// stops (a stopped server is idle: stop() resolves every request).
  void wait_idle();

  ServeCounters counters() const;
  const ServeOptions& options() const noexcept { return options_; }

 private:
  struct Pending {
    ScheduledRequest request;
    Stopwatch submitted;  ///< running since submit()
  };
  struct Flight {
    Stopwatch submitted;         ///< running since submit()
    double queue_seconds = 0.0;  ///< fixed when scheduled
  };

  void scheduler_loop();
  /// Drain the admission queue into the scheduler (lock held).
  bool admit_locked();
  /// Resolve every queued and in-flight request with FailedShutdown
  /// (lock held).  No-op when nothing is pending.
  void fail_residual_locked();

  ServeOptions options_;
  SessionCache cache_;
  BatchScheduler scheduler_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes the scheduler thread
  std::condition_variable done_cv_;  ///< wakes waiters on responses
  std::condition_variable stopped_cv_;  ///< wakes concurrent stop() calls
  std::deque<Pending> queue_;
  std::unordered_map<std::uint64_t, Flight> in_flight_;
  std::unordered_map<std::uint64_t, Response> done_;
  ServeCounters counters_;
  std::uint64_t next_request_id_ = 1;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopping_ = false;  ///< a stop() owns the thread handle right now
  std::thread thread_;
};

}  // namespace zipflm::serve
