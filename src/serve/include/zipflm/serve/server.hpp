// Server facade: bounded admission queue with explicit backpressure in
// front of the batching scheduler, run on a dedicated scheduler thread.
//
// Protocol: submit() either rejects immediately (queue full — the
// Admission carries a retry hint) or returns a request id; poll() or
// wait() collect the finished Response.  A request's `context` is the
// full client-tracked history of its session; re-submitting a session's
// previous output as the next context lets the session cache skip the
// O(history) replay.
//
// Sessions are serialized: while a session has a stream in flight, a
// second request for the same session id stays in the admission queue
// (other sessions overtake it) until the first finishes — so exactly
// one request ever owns a session's cache entry, and the second resumes
// from the state the first wrote back.
//
// Completed responses live in a bounded store (options.done_capacity):
// a fire-and-forget client that never collects its responses costs at
// most done_capacity retained Responses, not one per request forever.
// An evicted (or already-collected) response resolves as
// ResponseStatus::Expired instead of blocking a late waiter.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "zipflm/nn/generate.hpp"
#include "zipflm/nn/lm_model.hpp"
#include "zipflm/serve/counters.hpp"
#include "zipflm/serve/scheduler.hpp"
#include "zipflm/serve/session_cache.hpp"
#include "zipflm/support/stopwatch.hpp"

namespace zipflm::serve {

struct ServeOptions {
  Index max_batch = 16;           ///< concurrent streams per step
  std::size_t queue_depth = 64;   ///< admission queue bound
  std::size_t cache_capacity = 64;  ///< sessions kept warm (LRU)
  /// Completed responses retained for poll()/wait(); beyond this the
  /// oldest uncollected response is evicted (surfaced in
  /// ServeCounters::done_evictions) and later resolves as Expired.
  std::size_t done_capacity = 1024;
  /// How long a fresh, non-full batch waits for more arrivals before
  /// stepping — the latency cost paid for occupancy.
  double batch_deadline_seconds = 200e-6;
  /// stop() semantics: drain (finish every queued and in-flight request)
  /// or fail them immediately with ResponseStatus::FailedShutdown.
  bool drain_on_stop = true;
  /// Backpressure retry hint handed out until at least one request has
  /// completed — before that the measured mean latency is meaningless
  /// (zero), and a zero hint tells clients to hammer a full queue.
  double default_retry_seconds = 0.05;
  /// Registry prefix for this instance's "<scope>/..." metrics.  Two
  /// servers in one process (shards, tests) must use distinct scopes or
  /// their counters interleave; the sharded server assigns
  /// "<scope>/s<k>" per shard automatically.
  std::string metrics_scope = "serve";
  /// Optional second prefix that counters and histograms ALSO book
  /// into — the process-wide aggregate across instances.  Gauges
  /// (queue_depth, cache_evictions) stay per-scope: a last-write
  /// aggregate gauge across shards would be meaningless.  Empty = none.
  std::string metrics_aggregate;
};

struct Request {
  std::uint64_t session_id = 0;
  std::vector<Index> context;  ///< full session history, non-empty
  std::size_t new_tokens = 0;  ///< > 0; context + new_tokens must fit
                               ///< in options.max_context
  GenerateOptions options;
  std::uint64_t seed = 0;      ///< per-request sampling stream
};

struct Admission {
  bool accepted = false;
  std::uint64_t request_id = 0;  ///< valid when accepted
  std::size_t queue_depth = 0;   ///< queued requests after this decision
  double retry_after_seconds = 0.0;  ///< backoff hint when rejected
};

/// Terminal state of a request.  Every accepted request reaches exactly
/// one of these; a stopped server never leaves a waiter hanging.
enum class ResponseStatus : std::uint8_t {
  Ok,              ///< generated all requested tokens
  FailedShutdown,  ///< server stopped before the request finished
  Expired,         ///< finished, but the response was evicted from the
                   ///< bounded done store (or already collected once)
};

struct Response {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  ResponseStatus status = ResponseStatus::Ok;
  std::vector<Index> tokens;  ///< context + generated continuation
  bool cache_hit = false;     ///< session resumed from cache
  double queue_seconds = 0.0;  ///< submit -> first scheduled
  double total_seconds = 0.0;  ///< submit -> finished
};

class Server {
 public:
  /// `model` outlives the server and must not be used concurrently
  /// elsewhere while the server runs.
  Server(LmModel& model, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the scheduler thread.  submit() before start() is allowed;
  /// queued work runs once started.
  void start();

  /// Shut the scheduler thread down and join it.  With drain_on_stop
  /// (the default) every queued and in-flight request finishes first;
  /// otherwise they complete immediately with FailedShutdown.  Either
  /// way, every accepted request holds a terminal Response when stop()
  /// returns.  Safe to call concurrently and repeatedly: exactly one
  /// caller joins the thread, the rest block until shutdown completes.
  void stop();

  /// Non-blocking admission.  Throws ConfigError on malformed requests
  /// (empty context, zero new_tokens, context + new_tokens exceeding
  /// options.max_context); returns accepted == false under backpressure.
  Admission submit(Request request);

  /// Non-blocking: moves the response out when finished.  A request id
  /// whose response was evicted (or already collected) yields a
  /// Response with status Expired rather than false — false means the
  /// request is still pending (or the id was never issued).
  bool poll(std::uint64_t request_id, Response& out);

  /// Block until `request_id` reaches a terminal state.  Requires a
  /// started server (or an already-resolved request).  If the server
  /// stops before the request finishes, returns a FailedShutdown
  /// response instead of hanging forever; an evicted or re-waited
  /// response returns Expired instead of blocking.
  Response wait(std::uint64_t request_id);

  /// Block until no request is queued or in flight, or the server
  /// stops (a stopped server is idle: stop() resolves every request).
  void wait_idle();

  ServeCounters counters() const;
  /// Requests sitting in the admission queue right now — the cheap load
  /// signal the sharded router steals against.
  std::size_t queue_size() const;
  const ServeOptions& options() const noexcept { return options_; }

 private:
  struct Pending {
    ScheduledRequest request;
    Stopwatch submitted;  ///< running since submit()
  };
  struct Flight {
    Stopwatch submitted;         ///< running since submit()
    double queue_seconds = 0.0;  ///< fixed when scheduled
  };
  struct Metrics;  ///< per-instance registry references (server.cpp)

  void scheduler_loop();
  /// Drain the admission queue into the scheduler (lock held).  Skips
  /// requests whose session already has a stream in flight — they keep
  /// their queue position relative to each other and admit once the
  /// active stream finishes.
  bool admit_locked();
  /// True when some queued request could be admitted right now
  /// (capacity available and its session idle) — the deadline-wait
  /// predicate, so a queue full of same-session requests does not spin.
  bool admissible_queued_locked() const;
  /// Resolve every queued and in-flight request with FailedShutdown
  /// (lock held).  No-op when nothing is pending.
  void fail_residual_locked();
  /// Record `response` in the bounded done store, evicting the oldest
  /// uncollected response over capacity (lock held).
  void finish_locked(Response response);
  /// Remove a collected id from the eviction order (lock held).
  void erase_done_locked(std::unordered_map<std::uint64_t,
                                            Response>::iterator it);
  /// True for an issued id that is no longer tracked anywhere — its
  /// response was evicted or already collected (lock held).
  bool expired_locked(std::uint64_t request_id) const;

  ServeOptions options_;
  SessionCache cache_;
  BatchScheduler scheduler_;
  std::unique_ptr<Metrics> metrics_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes the scheduler thread
  std::condition_variable done_cv_;  ///< wakes waiters on responses
  std::condition_variable stopped_cv_;  ///< wakes concurrent stop() calls
  std::deque<Pending> queue_;
  std::unordered_map<std::uint64_t, Flight> in_flight_;
  std::unordered_map<std::uint64_t, Response> done_;
  std::list<std::uint64_t> done_order_;  ///< completion order, oldest first
  ServeCounters counters_;
  std::uint64_t next_request_id_ = 1;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopping_ = false;  ///< a stop() owns the thread handle right now
  std::thread thread_;
};

}  // namespace zipflm::serve
