// LRU cache of per-session recurrent state, the serving engine's memory
// between requests.
//
// Invariant of a cached entry: `state` is the model state after feeding
// history[0 .. n-2] and `last_token` is history[n-1], which has NOT been
// fed yet.  A resumed session therefore restarts at cursor n-1 — its
// first batched step feeds `last_token` — and an evicted session simply
// replays its history from token 0.  Either way the token stream is
// identical; eviction only costs recompute, never correctness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <utility>

#include "zipflm/nn/lm_model.hpp"

namespace zipflm::serve {

/// FNV-1a over the token ids.  Guards resumed sessions against a client
/// that re-submits a different history under the same session id.
std::uint64_t token_fingerprint(std::span<const Index> tokens) noexcept;

struct SessionEntry {
  RecurrentState state;          ///< after feeding history[0 .. n-2]
  Index last_token = 0;          ///< history[n-1], pending (not fed)
  std::size_t history_len = 0;   ///< n
  std::uint64_t fingerprint = 0; ///< token_fingerprint(history[0 .. n-1])
};

/// Capacity-bounded LRU map session id -> SessionEntry.  Not
/// thread-safe; the scheduler thread is the only user.
class SessionCache {
 public:
  explicit SessionCache(std::size_t capacity);

  /// Remove and return the entry for `session_id` (move semantics keep
  /// the recurrent state single-owner while the session is active).
  /// Returns false when absent.
  bool take(std::uint64_t session_id, SessionEntry& out);

  /// Insert or replace, evicting the least recently used entry when
  /// over capacity.  A zero-capacity cache drops the entry immediately.
  void put(std::uint64_t session_id, SessionEntry entry);

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<std::uint64_t, SessionEntry>> lru_;
  std::unordered_map<std::uint64_t, decltype(lru_)::iterator> map_;
  std::uint64_t evictions_ = 0;
};

}  // namespace zipflm::serve
