#include "zipflm/serve/wire.hpp"

#include <cstring>
#include <string>

#include "zipflm/net/telemetry.hpp"

namespace zipflm::serve::wire {
namespace {

/// Append-only little-endian writer over a byte vector.
class Writer {
 public:
  explicit Writer(FrameType type) { u8(static_cast<std::uint8_t>(type)); }

  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void tokens(const std::vector<Index>& t) {
    u64(t.size());
    if (!t.empty()) raw(t.data(), t.size() * sizeof(Index));
  }
  void str(const std::string& s) {
    u64(s.size());
    if (!s.empty()) raw(s.data(), s.size());
  }

  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  std::vector<std::byte> bytes_;
};

/// Strict reader: every underrun or leftover byte is a protocol error.
class Reader {
 public:
  Reader(const std::vector<std::byte>& bytes, FrameType expected)
      : bytes_(bytes) {
    const auto got = static_cast<FrameType>(u8());
    if (got != expected) {
      throw net::ProtocolError(
          "serve frame type mismatch: expected " +
          std::to_string(static_cast<int>(expected)) + ", got " +
          std::to_string(static_cast<int>(got)));
    }
  }

  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof(v));
    return v;
  }
  std::vector<Index> tokens() {
    const std::uint64_t count = u64();
    if (count > kMaxFrameBytes / sizeof(Index)) {
      throw net::ProtocolError("serve frame token count " +
                               std::to_string(count) + " is implausible");
    }
    std::vector<Index> t(static_cast<std::size_t>(count));
    if (count > 0) raw(t.data(), t.size() * sizeof(Index));
    return t;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > bytes_.size() - cursor_) {
      throw net::ProtocolError("serve frame string length " +
                               std::to_string(n) + " exceeds the frame");
    }
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n > 0) raw(s.data(), s.size());
    return s;
  }

  void finish() const {
    if (cursor_ != bytes_.size()) {
      throw net::ProtocolError(
          "serve frame carries " + std::to_string(bytes_.size() - cursor_) +
          " trailing bytes");
    }
  }

 private:
  void raw(void* out, std::size_t size) {
    if (bytes_.size() - cursor_ < size) {
      throw net::ProtocolError("serve frame truncated: wanted " +
                               std::to_string(size) + " bytes, " +
                               std::to_string(bytes_.size() - cursor_) +
                               " left");
    }
    std::memcpy(out, bytes_.data() + cursor_, size);
    cursor_ += size;
  }

  const std::vector<std::byte>& bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::vector<std::byte> encode_submit(const Request& request) {
  Writer w(FrameType::Submit);
  w.u64(request.session_id);
  w.u64(request.new_tokens);
  w.u64(request.seed);
  w.f64(request.options.temperature);
  w.i64(request.options.max_context);
  w.i64(request.options.top_k);
  w.tokens(request.context);
  return w.take();
}

Request decode_submit(const std::vector<std::byte>& payload) {
  Reader r(payload, FrameType::Submit);
  Request request;
  request.session_id = r.u64();
  request.new_tokens = static_cast<std::size_t>(r.u64());
  request.seed = r.u64();
  request.options.temperature = r.f64();
  request.options.max_context = r.i64();
  request.options.top_k = r.i64();
  request.context = r.tokens();
  r.finish();
  return request;
}

std::vector<std::byte> encode_admission(const Admission& admission) {
  Writer w(FrameType::Admission);
  w.u8(admission.accepted ? 1 : 0);
  w.u64(admission.request_id);
  w.u64(admission.queue_depth);
  w.f64(admission.retry_after_seconds);
  return w.take();
}

Admission decode_admission(const std::vector<std::byte>& payload) {
  Reader r(payload, FrameType::Admission);
  Admission admission;
  admission.accepted = r.u8() != 0;
  admission.request_id = r.u64();
  admission.queue_depth = static_cast<std::size_t>(r.u64());
  admission.retry_after_seconds = r.f64();
  r.finish();
  return admission;
}

std::vector<std::byte> encode_response(const Response& response) {
  Writer w(FrameType::Response);
  w.u64(response.request_id);
  w.u64(response.session_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.u8(response.cache_hit ? 1 : 0);
  w.f64(response.queue_seconds);
  w.f64(response.total_seconds);
  w.tokens(response.tokens);
  return w.take();
}

Response decode_response(const std::vector<std::byte>& payload) {
  Reader r(payload, FrameType::Response);
  Response response;
  response.request_id = r.u64();
  response.session_id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(ResponseStatus::Expired)) {
    throw net::ProtocolError("serve response carries unknown status " +
                             std::to_string(status));
  }
  response.status = static_cast<ResponseStatus>(status);
  response.cache_hit = r.u8() != 0;
  response.queue_seconds = r.f64();
  response.total_seconds = r.f64();
  response.tokens = r.tokens();
  r.finish();
  return response;
}

std::vector<std::byte> encode_bye() { return Writer(FrameType::Bye).take(); }

std::vector<std::byte> encode_stats_request(const std::string& prefix) {
  Writer w(FrameType::StatsRequest);
  w.str(prefix);
  return w.take();
}

std::string decode_stats_request(const std::vector<std::byte>& payload) {
  Reader r(payload, FrameType::StatsRequest);
  std::string prefix = r.str();
  r.finish();
  return prefix;
}

std::vector<std::byte> encode_stats_reply(const obs::MetricsSnapshot& snap) {
  // Type byte + the telemetry plane's snapshot encoding (full
  // histogram buckets, so the client computes exact windowed
  // percentiles from bucket deltas).
  std::vector<std::byte> payload;
  payload.push_back(
      static_cast<std::byte>(static_cast<std::uint8_t>(FrameType::StatsReply)));
  net::telemetry::write_metrics_snapshot(payload, snap);
  return payload;
}

obs::MetricsSnapshot decode_stats_reply(const std::vector<std::byte>& payload) {
  if (frame_type(payload) != FrameType::StatsReply) {
    throw net::ProtocolError("serve frame is not a StatsReply");
  }
  std::size_t cursor = 1;
  obs::MetricsSnapshot snap =
      net::telemetry::read_metrics_snapshot(payload, cursor);
  if (cursor != payload.size()) {
    throw net::ProtocolError(
        "serve StatsReply carries " + std::to_string(payload.size() - cursor) +
        " trailing bytes");
  }
  return snap;
}

FrameType frame_type(const std::vector<std::byte>& payload) {
  if (payload.empty()) {
    throw net::ProtocolError("empty serve frame");
  }
  const auto type = static_cast<std::uint8_t>(payload.front());
  if (type < static_cast<std::uint8_t>(FrameType::Submit) ||
      type > static_cast<std::uint8_t>(FrameType::StatsReply)) {
    throw net::ProtocolError("unknown serve frame type " +
                             std::to_string(type));
  }
  return static_cast<FrameType>(type);
}

void send_frame(net::Transport& transport, int peer,
                const std::vector<std::byte>& payload) {
  ZIPFLM_CHECK(payload.size() <= kMaxFrameBytes, "serve frame too large");
  const std::uint64_t length = payload.size();
  // Both sends must outlive their waits; post the pair, then wait the
  // pair, so a stream backend can coalesce them into one flush.
  auto header = transport.send(
      peer, std::span(reinterpret_cast<const std::byte*>(&length),
                      sizeof(length)));
  auto body = transport.send(peer, std::span(payload.data(), payload.size()));
  header.wait();
  body.wait();
}

std::vector<std::byte> recv_frame(net::Transport& transport, int peer) {
  std::uint64_t length = 0;
  transport.recv_blocking(
      peer,
      std::span(reinterpret_cast<std::byte*>(&length), sizeof(length)));
  if (length == 0 || length > kMaxFrameBytes) {
    throw net::ProtocolError("serve frame length " + std::to_string(length) +
                             " out of range");
  }
  std::vector<std::byte> payload(static_cast<std::size_t>(length));
  transport.recv_blocking(peer, std::span(payload.data(), payload.size()));
  frame_type(payload);  // validate before handing upward
  return payload;
}

}  // namespace zipflm::serve::wire
