#include "zipflm/device/device.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace zipflm {

DeviceProps DeviceProps::titan_x() {
  return DeviceProps{"GTX Titan X", 12ull << 30, 6.1e12, 0.4};
}

DeviceProps DeviceProps::v100() {
  return DeviceProps{"Tesla V100", 16ull << 30, 125e12, 0.4};
}

Allocation::Allocation(MemoryPool& pool, std::size_t bytes, std::string tag)
    : pool_(&pool), bytes_(bytes), tag_(std::move(tag)) {
  pool_->take(bytes_, tag_);
}

Allocation::~Allocation() { release(); }

Allocation::Allocation(Allocation&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      tag_(std::move(other.tag_)) {}

Allocation& Allocation::operator=(Allocation&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    tag_ = std::move(other.tag_);
  }
  return *this;
}

void Allocation::release() {
  if (pool_ != nullptr) {
    pool_->give_back(bytes_);
    pool_ = nullptr;
    bytes_ = 0;
  }
}

MemoryPool::MemoryPool(std::size_t capacity_bytes, std::string device_name)
    : capacity_(capacity_bytes), name_(std::move(device_name)) {}

Allocation MemoryPool::allocate(std::size_t bytes, std::string tag) {
  return Allocation(*this, bytes, std::move(tag));
}

void MemoryPool::take(std::size_t bytes, const std::string& tag) {
  if (bytes > capacity_ - used_) {
    std::ostringstream os;
    os << name_ << ": out of device memory allocating '" << tag << "' ("
       << bytes << " bytes requested, " << (capacity_ - used_)
       << " available of " << capacity_ << ")";
    throw OutOfMemoryError(os.str(), bytes, capacity_ - used_);
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  ++count_;
}

void MemoryPool::give_back(std::size_t bytes) noexcept {
  used_ -= bytes;
}

}  // namespace zipflm
