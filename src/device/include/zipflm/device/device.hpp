// Simulated GPU device: a memory pool with the card's real capacity (so
// the baseline's Θ(G·K·D) buffers hit the same 12 GB wall the paper's
// Tables III/IV mark with '*'), plus a throughput model that converts a
// kernel's FLOP count into simulated seconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "zipflm/support/error.hpp"

namespace zipflm {

/// Static properties of a GPU model.
struct DeviceProps {
  std::string name;
  std::size_t memory_bytes = 0;   ///< usable HBM
  double peak_flops = 0.0;        ///< peak FP32 (or tensor) FLOP/s
  /// Fraction of peak a well-tuned RNN step achieves.  The paper reports
  /// 40% of peak for the word LM and 64% for the char LM on Titan X;
  /// model-specific efficiency is passed per workload, this is a default.
  double default_efficiency = 0.4;

  /// GeForce GTX Titan X (Table II): 12 GB HBM, 6.1 TFLOP/s FP32.
  static DeviceProps titan_x();
  /// Tesla V100 as used by Puri et al. [21]: 16 GB, 125 TFLOP/s tensor.
  static DeviceProps v100();

  /// Seconds to execute `flops` at the given fraction of peak.
  double seconds_for_flops(double flops, double efficiency) const {
    ZIPFLM_ASSERT(peak_flops > 0.0 && efficiency > 0.0,
                  "device throughput must be positive");
    return flops / (peak_flops * efficiency);
  }
  double seconds_for_flops(double flops) const {
    return seconds_for_flops(flops, default_efficiency);
  }
};

class MemoryPool;

/// RAII handle for a simulated device allocation (Core Guidelines R.1).
class Allocation {
 public:
  Allocation() = default;
  Allocation(MemoryPool& pool, std::size_t bytes, std::string tag);
  ~Allocation();

  Allocation(Allocation&& other) noexcept;
  Allocation& operator=(Allocation&& other) noexcept;
  Allocation(const Allocation&) = delete;
  Allocation& operator=(const Allocation&) = delete;

  std::size_t bytes() const noexcept { return bytes_; }
  const std::string& tag() const noexcept { return tag_; }
  void release();

 private:
  MemoryPool* pool_ = nullptr;
  std::size_t bytes_ = 0;
  std::string tag_;
};

/// Byte-accurate accounting of one simulated GPU's memory.  Not thread
/// safe: each rank owns exactly one pool and touches it from its own
/// thread only.
class MemoryPool {
 public:
  explicit MemoryPool(std::size_t capacity_bytes, std::string device_name = "gpu");

  /// Reserve `bytes`; throws OutOfMemoryError (with the request and the
  /// remaining headroom) when capacity would be exceeded.
  Allocation allocate(std::size_t bytes, std::string tag);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  std::size_t peak() const noexcept { return peak_; }
  std::size_t available() const noexcept { return capacity_ - used_; }
  std::uint64_t allocation_count() const noexcept { return count_; }

  /// Forget the high-water mark (start of a new measurement phase).
  void reset_peak() { peak_ = used_; }

 private:
  friend class Allocation;
  void take(std::size_t bytes, const std::string& tag);
  void give_back(std::size_t bytes) noexcept;

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t count_ = 0;
  std::string name_;
};

}  // namespace zipflm
