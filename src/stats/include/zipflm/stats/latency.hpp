// Latency histogram for serving-side percentile reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zipflm {

/// Fixed log-spaced histogram over (0, ~100 s] with an overflow bucket,
/// tracking count/sum/min/max exactly and percentiles to bucket
/// resolution (~7% relative error).  Plain value type: snapshot by copy,
/// merge with +=.  Not thread-safe; callers serialize access.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Record one observation in seconds.  Non-finite or negative values
  /// are clamped into the first bucket.
  void record(double seconds);

  std::uint64_t count() const noexcept { return count_; }
  double sum_seconds() const noexcept { return sum_; }
  double min_seconds() const noexcept;  ///< 0 when empty
  double max_seconds() const noexcept;  ///< 0 when empty
  double mean_seconds() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper bound of the bucket holding the p-quantile (p in [0, 1]);
  /// 0 when empty.  percentile(0.5) is the p50, percentile(0.95) the p95.
  double percentile(double p) const;

  /// Merge another histogram's observations into this one.
  LatencyHistogram& operator+=(const LatencyHistogram& other);

  void reset();

 private:
  static constexpr std::size_t kBuckets = 256;
  static std::size_t bucket_for(double seconds);
  static double bucket_upper(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace zipflm
