// Power-law fitting: U = c * N^alpha via least squares in log-log space,
// with the coefficient of determination the paper reports (R² = 1.00 in
// Fig 1).
#pragma once

#include <span>
#include <vector>

namespace zipflm {

struct PowerLawFit {
  double coefficient = 0.0;  ///< c
  double exponent = 0.0;     ///< alpha
  double r_squared = 0.0;
  double predict(double x) const;
};

/// Fit y = c * x^alpha to (x, y) pairs; all values must be positive.
PowerLawFit fit_power_law(std::span<const double> x,
                          std::span<const double> y);

/// Simple linear regression y = a + b x (helper, also used directly).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

}  // namespace zipflm
