// Evaluation metrics used throughout the paper's Section V.
#pragma once

#include <cstdint>

namespace zipflm {

/// Perplexity from a mean cross-entropy in nats/token.
double perplexity_from_nats(double nats);

/// Bits-per-character from nats/char (the paper's BPC metric, §V-D).
double bpc_from_nats(double nats);

/// log2(perplexity) — the paper's conversion in §V-C.
double bpc_from_perplexity(double ppl);

/// Compression ratio (§V-C): corpus bytes divided by the compressed size
/// implied by the model, bits-per-char * characters / 8.
double compression_ratio(double corpus_bytes, double bits_per_char,
                         double characters);

/// Parallel efficiency of scaling from (g0, t0) to (g1, t1) where t is
/// time per epoch at fixed local batch (Tables III/IV): ideal time at g1
/// is t0 * g0 / g1.
double parallel_efficiency(int g0, double t0_hours, int g1, double t1_hours);

/// Speedup of b over a.
inline double speedup(double a_seconds, double b_seconds) {
  return a_seconds / b_seconds;
}

}  // namespace zipflm
