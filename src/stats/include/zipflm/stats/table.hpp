// Plain-text table rendering for the experiment benchmarks: every bench
// binary prints the corresponding paper table/figure in this format.
#pragma once

#include <string>
#include <vector>

namespace zipflm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with column alignment and a header rule.
  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zipflm
