#include "zipflm/stats/latency.hpp"

#include <algorithm>
#include <cmath>

namespace zipflm {
namespace {

// Bucket 0 holds (0, kFloor]; buckets 1..kBuckets-2 are log-spaced up to
// kCeil; the last bucket is overflow.
constexpr double kFloor = 1e-7;  // 0.1 us
constexpr double kCeil = 100.0;  // 100 s

double growth_log() {
  static const double g =
      std::log(kCeil / kFloor) / static_cast<double>(256 - 2);
  return g;
}

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_for(double seconds) {
  if (!(seconds > kFloor)) return 0;
  if (seconds >= kCeil) return kBuckets - 1;
  const double idx = std::log(seconds / kFloor) / growth_log();
  const auto b = static_cast<std::size_t>(idx) + 1;
  return std::min(b, kBuckets - 2);
}

double LatencyHistogram::bucket_upper(std::size_t bucket) {
  if (bucket == 0) return kFloor;
  if (bucket >= kBuckets - 1) return kCeil;
  return kFloor * std::exp(growth_log() * static_cast<double>(bucket));
}

void LatencyHistogram::record(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) seconds = 0.0;
  buckets_[bucket_for(seconds)] += 1;
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  count_ += 1;
  sum_ += seconds;
}

double LatencyHistogram::min_seconds() const noexcept {
  return count_ == 0 ? 0.0 : min_;
}

double LatencyHistogram::max_seconds() const noexcept {
  return count_ == 0 ? 0.0 : max_;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the p-quantile observation, 1-based nearest-rank.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Clamp the reported bound to the observed extremes so p0/p100
      // are exact and a single-bucket histogram reports sane values.
      return std::clamp(bucket_upper(b), min_, max_);
    }
  }
  return max_;
}

LatencyHistogram& LatencyHistogram::operator+=(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return *this;
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace zipflm
