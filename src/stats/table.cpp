#include "zipflm/stats/table.hpp"

#include <algorithm>
#include <sstream>

#include "zipflm/support/error.hpp"

namespace zipflm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ZIPFLM_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  ZIPFLM_CHECK(cells.size() == headers_.size(),
               "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace zipflm
