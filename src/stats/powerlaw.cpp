#include "zipflm/stats/powerlaw.hpp"

#include <cmath>

#include "zipflm/support/error.hpp"

namespace zipflm {

double PowerLawFit::predict(double x) const {
  return coefficient * std::pow(x, exponent);
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  ZIPFLM_CHECK(x.size() == y.size() && x.size() >= 2,
               "linear fit needs at least two matched points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  ZIPFLM_CHECK(denom != 0.0, "degenerate x values in linear fit");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  // R^2 = 1 - SS_res / SS_tot.
  const double mean_y = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

PowerLawFit fit_power_law(std::span<const double> x,
                          std::span<const double> y) {
  ZIPFLM_CHECK(x.size() == y.size() && x.size() >= 2,
               "power-law fit needs at least two matched points");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ZIPFLM_CHECK(x[i] > 0.0 && y[i] > 0.0,
                 "power-law fit requires positive values");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerLawFit fit;
  fit.coefficient = std::exp(lin.intercept);
  fit.exponent = lin.slope;
  fit.r_squared = lin.r_squared;
  return fit;
}

}  // namespace zipflm
