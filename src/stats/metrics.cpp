#include "zipflm/stats/metrics.hpp"

#include <cmath>
#include <numbers>

#include "zipflm/support/error.hpp"

namespace zipflm {

double perplexity_from_nats(double nats) { return std::exp(nats); }

double bpc_from_nats(double nats) { return nats / std::numbers::ln2; }

double bpc_from_perplexity(double ppl) {
  ZIPFLM_CHECK(ppl > 0.0, "perplexity must be positive");
  return std::log2(ppl);
}

double compression_ratio(double corpus_bytes, double bits_per_char,
                         double characters) {
  ZIPFLM_CHECK(bits_per_char > 0.0 && characters > 0.0,
               "compression ratio needs positive bpc and size");
  return corpus_bytes / (bits_per_char * characters / 8.0);
}

double parallel_efficiency(int g0, double t0_hours, int g1, double t1_hours) {
  ZIPFLM_CHECK(g0 > 0 && g1 > 0 && t0_hours > 0.0 && t1_hours > 0.0,
               "efficiency needs positive gpu counts and times");
  const double ideal = t0_hours * static_cast<double>(g0) /
                       static_cast<double>(g1);
  return ideal / t1_hours;
}

}  // namespace zipflm
