#include "zipflm/comm/async_exchange.hpp"

#include <string>
#include <utility>

#include "zipflm/obs/trace.hpp"
#include "zipflm/support/stopwatch.hpp"

namespace zipflm {

AsyncCommEngine::AsyncCommEngine(Communicator& comm, bool overlap,
                                 bool force_thread)
    : comm_(comm),
      // Overlap only pays when a spare core can run the comm thread
      // while the main thread computes.  On a single-hardware-thread
      // host the worker would just time-slice against backprop — all
      // handoff cost, zero hiding — so the engine degrades to inline
      // execution at submit().  Same jobs, same order, same bytes (the
      // determinism contract makes the two transports bitwise
      // identical); overlap_efficiency simply reports 0.
      overlap_(overlap &&
               (force_thread || std::thread::hardware_concurrency() > 1)) {}

AsyncCommEngine::~AsyncCommEngine() {
  if (!worker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void AsyncCommEngine::run_job(const Job& job) {
  obs::SpanScope span(job.label, "payload_bytes",
                      static_cast<double>(job.payload_bytes));
  Stopwatch watch;
  job.fn(comm_);
  const double secs = watch.seconds();
  // Called either inline (no worker) or on the worker with mu_ free;
  // both sides serialize every stats_ access through mu_.
  std::lock_guard<std::mutex> lock(mu_);
  stats_.jobs += 1;
  stats_.payload_bytes += job.payload_bytes;
  stats_.busy_seconds += secs;
}

void AsyncCommEngine::submit(const char* label, std::size_t payload_bytes,
                             std::function<void(Communicator&)> job) {
  if (!overlap_) {
    run_job(Job{label, payload_bytes, std::move(job)});
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (error_ != nullptr) return;  // queue aborted; flush() will report
  queue_.push_back(Job{label, payload_bytes, std::move(job)});
  if (!worker_.joinable()) {
    worker_ = std::thread([this] { worker_loop(); });
  }
  lock.unlock();
  cv_.notify_one();
}

void AsyncCommEngine::worker_loop() {
  obs::set_thread_lane("rank " + std::to_string(comm_.rank()) + " comm",
                       /*sort_key=*/1000 + comm_.rank());
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ with a drained queue
    Job job = std::move(queue_.front());
    queue_.pop_front();
    running_job_ = true;
    lock.unlock();

    std::exception_ptr err;
    try {
      run_job(job);
    } catch (...) {
      err = std::current_exception();
    }

    lock.lock();
    running_job_ = false;
    if (err != nullptr && error_ == nullptr) {
      error_ = err;
      queue_.clear();  // abort: nothing after a failed collective is safe
    }
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void AsyncCommEngine::flush() {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!queue_.empty() || running_job_) {
      Stopwatch watch;
      idle_cv_.wait(lock, [this] { return queue_.empty() && !running_job_; });
      stats_.flush_wait_seconds += watch.seconds();
    }
    err = std::exchange(error_, nullptr);
  }
  if (err != nullptr) std::rethrow_exception(err);
}

AsyncCommEngine::Stats AsyncCommEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncCommEngine::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

}  // namespace zipflm
