#include "zipflm/comm/transport_comm.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>

#include "comm_internal.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/tensor/cast.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

using comm_internal::CommMetrics;
using comm_internal::chunk_range;
using comm_internal::wrap;

namespace {
constexpr std::uint32_t kCollMagic = 0x5A4C4331;  // "ZLC1"

void poison(std::byte* buf, std::size_t bytes) {
  if (buf != nullptr && bytes != 0) std::memset(buf, 0xFF, bytes);
}
}  // namespace

TransportComm::TransportComm(net::Transport& transport, Topology topo,
                             Hooks hooks)
    : transport_(transport), topo_(topo), hooks_(std::move(hooks)) {
  ZIPFLM_CHECK(hooks_.ledger != nullptr,
               "TransportComm needs a TrafficLedger sink");
  ZIPFLM_CHECK(hooks_.cost != nullptr, "TransportComm needs a CostModel");
  ZIPFLM_CHECK(topo_.world_size() == transport_.world_size(),
               "topology must match the transport's world size");
}

TransportComm::WireScope::WireScope(TransportComm& comm)
    : comm_(comm),
      before_(comm.transport_.stats()),
      start_(std::chrono::steady_clock::now()) {}

TransportComm::WireScope::~WireScope() {
  const net::NetStats& now = comm_.transport_.stats();
  const double real = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  auto& led = comm_.ledger();
  led.wire_bytes_sent += now.wire_bytes_sent - before_.wire_bytes_sent;
  led.wire_bytes_received +=
      now.wire_bytes_received - before_.wire_bytes_received;
  led.real_comm_seconds += real;

  auto& m = CommMetrics::get();
  m.wire_bytes_sent.add(now.wire_bytes_sent - before_.wire_bytes_sent);
  m.wire_bytes_received.add(now.wire_bytes_received -
                            before_.wire_bytes_received);
  m.real_seconds.add(real);
  const double send_wait = now.send_wait_seconds - before_.send_wait_seconds;
  const double recv_wait = now.recv_wait_seconds - before_.recv_wait_seconds;
  if (send_wait > 0.0) m.net_send_wait.record(send_wait);
  if (recv_wait > 0.0) m.net_recv_wait.record(recv_wait);
}

void TransportComm::enter_collective(std::byte* buf, std::size_t bytes) {
  if (!hooks_.fault) return;
  const TransportFault act = hooks_.fault();
  if (!act.armed) return;
  switch (act.kind) {
    case FaultKind::Kill:
      throw SimulatedRankDeath{hooks_.global_rank};
    case FaultKind::Delay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(act.delay_seconds));
      break;
    case FaultKind::Corrupt:
      if (buf != nullptr) {
        poison(buf, bytes);
      } else {
        pending_corrupt_ = true;  // applied once a buffer exists
      }
      break;
  }
}

TransportComm::WireHeader TransportComm::make_header(CollOp op,
                                                     std::uint64_t bytes,
                                                     int root,
                                                     WireCodec codec) const {
  WireHeader h;
  h.magic = kCollMagic;
  h.op = static_cast<std::uint8_t>(op);
  h.pad[0] = static_cast<std::uint8_t>(codec);
  h.root = root;
  h.seq = seq_;
  h.coll_bytes = bytes;
  return h;
}

void TransportComm::validate_header(const WireHeader& got, CollOp op,
                                    std::uint64_t bytes, int root,
                                    WireCodec codec) const {
  if (got.magic != kCollMagic) {
    throw CollectiveMismatchError(
        "collective frame with bad magic — transport streams desynced");
  }
  if (got.op != static_cast<std::uint8_t>(op) || got.seq != seq_) {
    throw CollectiveMismatchError(
        "ranks invoked different collectives in the same step");
  }
  if (got.coll_bytes != bytes) {
    throw CollectiveMismatchError(
        "ranks invoked a collective with mismatched payload sizes");
  }
  if (got.root != root) {
    throw CollectiveMismatchError(
        "ranks invoked a rooted collective with different roots");
  }
  if (got.pad[0] != static_cast<std::uint8_t>(codec)) {
    throw CollectiveMismatchError(
        "ranks invoked a collective with mismatched wire codecs");
  }
}

void TransportComm::neighbor_handshake(CollOp op, std::uint64_t bytes,
                                       int root, WireCodec codec) {
  const int g = world_size();
  if (g > 1) {
    const WireHeader mine = make_header(op, bytes, root, codec);
    WireHeader theirs;
    auto sent = transport_.send(
        wrap(rank() + 1, g),
        std::as_bytes(std::span<const WireHeader>(&mine, 1)));
    transport_.recv_blocking(
        wrap(rank() - 1, g),
        std::as_writable_bytes(std::span<WireHeader>(&theirs, 1)));
    sent.wait();
    validate_header(theirs, op, bytes, root, codec);
  }
  ++seq_;
}

void TransportComm::rethrow_as_collective(const char* coll) {
  try {
    throw;
  } catch (const net::TransportTimeoutError& e) {
    throw CollectiveTimeoutError(std::string(coll) +
                                 " timed out on the transport (" + e.what() +
                                 ")");
  } catch (const net::PeerClosedError& e) {
    throw CollectiveTimeoutError(std::string(coll) +
                                 " lost a peer mid-collective (" + e.what() +
                                 ")");
  } catch (const net::ProtocolError& e) {
    throw CollectiveMismatchError(std::string(coll) + ": " + e.what());
  }
}

void TransportComm::barrier() {
  obs::SpanScope span("barrier");
  enter_collective(nullptr, 0);
  WireScope wire(*this);
  try {
    // Dissemination barrier: after round k every rank has (transitively)
    // heard from all ranks within distance 2^(k+1), so ceil(log2 g)
    // header-only rounds make a full rendezvous.
    const int g = world_size();
    const WireHeader mine = make_header(CollOp::Barrier, 0, -1, WireCodec::None);
    for (int dist = 1; dist < g; dist <<= 1) {
      WireHeader theirs;
      auto sent = transport_.send(
          wrap(rank() + dist, g),
          std::as_bytes(std::span<const WireHeader>(&mine, 1)));
      transport_.recv_blocking(
          wrap(rank() - dist, g),
          std::as_writable_bytes(std::span<WireHeader>(&theirs, 1)));
      sent.wait();
      validate_header(theirs, CollOp::Barrier, 0, -1, WireCodec::None);
    }
    ++seq_;
  } catch (const net::TransportError&) {
    rethrow_as_collective("barrier");
  }
  ++ledger().barrier_calls;
  CommMetrics::get().barrier_calls.add(1);
}

template <typename T, typename Red>
std::uint64_t TransportComm::ring_allreduce_coded(std::span<T> data,
                                                  Red reduce, WireCodec codec,
                                                  std::uint64_t& moved_elems,
                                                  std::uint64_t& enc_wire) {
  const int g = world_size();
  const int right = wrap(rank() + 1, g);
  const int left = wrap(rank() - 1, g);
  const std::size_t n = data.size();
  std::vector<T> scratch(chunk_range(n, g, 0).size());
  std::vector<std::byte> enc_send, enc_recv, enc_fwd;
  std::uint64_t enc_final_total = 0;

  // One ring hop of encoded bytes: a u32 size exchange followed by the
  // variably-sized payload (chunk encodings differ in length between
  // neighbours).  Empty chunks send zero bytes, mirroring the raw path.
  auto hop = [&](const std::vector<std::byte>& out_buf) {
    std::uint32_t send_n = static_cast<std::uint32_t>(out_buf.size());
    std::uint32_t recv_n = 0;
    auto s1 = transport_.send(
        right, std::as_bytes(std::span<const std::uint32_t>(&send_n, 1)));
    auto r1 = transport_.recv(
        left, std::as_writable_bytes(std::span<std::uint32_t>(&recv_n, 1)));
    r1.wait();
    s1.wait();
    enc_recv.resize(recv_n);
    auto s2 = transport_.send(right, std::span<const std::byte>(out_buf));
    auto r2 = transport_.recv(left, std::span<std::byte>(enc_recv));
    r2.wait();
    s2.wait();
    enc_wire += sizeof(std::uint32_t) + out_buf.size();
  };

  // Phase 1: reduce-scatter over encoded partials.  The operand the
  // reducer sees is decode(encode(left partial)) — for a lossless codec
  // that is the partial itself (identical arithmetic to the raw path);
  // for INT8 the shared-memory engine performs the same round-trip on
  // the published values, keeping the addition trees bitwise equal.
  for (int s = 0; s + 1 < g; ++s) {
    const auto sr = chunk_range(n, g, wrap(rank() - s, g));
    const auto rr = chunk_range(n, g, wrap(rank() - s - 1, g));
    if (sr.size() != 0) {
      encode_grad_chunk(
          codec, std::span<const T>(data.data() + sr.begin, sr.size()),
          enc_send);
    } else {
      enc_send.clear();
    }
    hop(enc_send);
    if (rr.size() != 0) {
      decode_grad_chunk(codec, std::span<const std::byte>(enc_recv),
                        std::span<T>(scratch.data(), rr.size()));
      reduce(data.data() + rr.begin, scratch.data(), rr.size());
    }
    moved_elems += sr.size();
  }

  // Phase 2: allgather of encoded final chunks.  The owner encodes its
  // completed chunk exactly once; every later hop forwards those bytes
  // verbatim, so all ranks decode the identical encoding.  For a lossy
  // codec the owner also replaces its own copy with the decode of that
  // encoding — everyone, owner included, ends at decode(encode(final)).
  const bool lossy = codec == WireCodec::Int8;
  for (int s = 0; s + 1 < g; ++s) {
    const auto sr = chunk_range(n, g, wrap(rank() + 1 - s, g));
    const auto rr = chunk_range(n, g, wrap(rank() - s, g));
    if (s == 0) {
      if (sr.size() != 0) {
        encode_grad_chunk(
            codec, std::span<const T>(data.data() + sr.begin, sr.size()),
            enc_send);
        enc_final_total += enc_send.size();
        if (lossy) {
          decode_grad_chunk(codec, std::span<const std::byte>(enc_send),
                            std::span<T>(data.data() + sr.begin, sr.size()));
        }
      } else {
        enc_send.clear();
      }
      hop(enc_send);
    } else {
      hop(enc_fwd);
    }
    enc_final_total += enc_recv.size();
    if (rr.size() != 0) {
      decode_grad_chunk(codec, std::span<const std::byte>(enc_recv),
                        std::span<T>(data.data() + rr.begin, rr.size()));
    }
    enc_fwd.swap(enc_recv);
    moved_elems += sr.size();
  }
  return enc_final_total;
}

template <typename T, typename Red>
void TransportComm::ring_allreduce(std::span<T> data, CollOp op,
                                   const char* op_name, Red reduce,
                                   WireCodec codec) {
  const int g = world_size();
  const std::size_t payload = data.size() * sizeof(T);
  obs::SpanScope span(op_name, "payload_bytes", static_cast<double>(payload));
  enter_collective(reinterpret_cast<std::byte*>(data.data()), payload);
  WireScope wire(*this);
  try {
    neighbor_handshake(op, payload, -1, codec);

    auto& led = ledger();
    ++led.allreduce_calls;
    led.max_allreduce_payload_bytes =
        std::max<std::uint64_t>(led.max_allreduce_payload_bytes, payload);
    auto& m = CommMetrics::get();
    m.allreduce_calls.add(1);
    m.max_allreduce_payload.set_max(static_cast<double>(payload));
    if (g > 1 && !data.empty()) {
      const int right = wrap(rank() + 1, g);
      const int left = wrap(rank() - 1, g);
      const std::size_t n = data.size();
      std::uint64_t moved_elems = 0;

      if (codec != WireCodec::None) {
        std::uint64_t enc_wire = 0;
        const std::uint64_t enc_total = ring_allreduce_coded<T, Red>(
            data, reduce, codec, moved_elems, enc_wire);
        record_codec_traffic(led,
                             codec == WireCodec::Packed ? CodecSlot::Packed
                                                        : CodecSlot::Int8,
                             moved_elems * sizeof(T), enc_wire);
        // The span carries the measured encoded volume so a merged
        // trace can show compression ratios without the ledger.
        span.set_arg3("wire_bytes", static_cast<double>(enc_wire));
        span.set_arg4("codec", static_cast<double>(static_cast<int>(codec)));
        last_codec_ratio_ =
            payload == 0 ? 0.0
                         : static_cast<double>(enc_total) /
                               static_cast<double>(payload);
      } else {
        // Chunk 0 is always the largest (the first n%g chunks carry the
        // remainder), so one scratch buffer serves every receive.
        std::vector<T> scratch(chunk_range(n, g, 0).size());

        // Phase 1: reduce-scatter.  Step s: send our partial of chunk
        // (rank - s) right, receive the left neighbour's partial of chunk
        // (rank - s - 1), and accumulate it as `mine += left` — the same
        // operand order, on the same contiguous ranges, as the
        // shared-memory engine, so the FP addition tree is identical.
        for (int s = 0; s + 1 < g; ++s) {
          const auto sr = chunk_range(n, g, wrap(rank() - s, g));
          const auto rr = chunk_range(n, g, wrap(rank() - s - 1, g));
          auto sent = transport_.send(
              right, std::as_bytes(data.subspan(sr.begin, sr.size())));
          auto got = transport_.recv(
              left, std::as_writable_bytes(
                        std::span<T>(scratch.data(), rr.size())));
          got.wait();
          sent.wait();
          if (rr.size() != 0) {
            reduce(data.data() + rr.begin, scratch.data(), rr.size());
          }
          moved_elems += sr.size();
        }
        // Phase 2: allgather.  Step s: forward the completed chunk
        // (rank + 1 - s) right, receive completed chunk (rank - s) from
        // the left straight into place.  Waiting both completions inside
        // the step keeps the send source immutable until it is drained.
        for (int s = 0; s + 1 < g; ++s) {
          const auto sr = chunk_range(n, g, wrap(rank() + 1 - s, g));
          const auto rr = chunk_range(n, g, wrap(rank() - s, g));
          auto sent = transport_.send(
              right, std::as_bytes(data.subspan(sr.begin, sr.size())));
          auto got = transport_.recv(
              left, std::as_writable_bytes(data.subspan(rr.begin, rr.size())));
          got.wait();
          sent.wait();
          moved_elems += sr.size();
        }
      }

      // Logical payload accounting stays in raw-element terms for every
      // codec (the closed-form ledger identities hold codec-on or off);
      // the measured encoded volume lands in wire_bytes_* via WireScope
      // and in the per-codec ledger slots above.
      led.bytes_sent += moved_elems * sizeof(T);
      led.bytes_received += moved_elems * sizeof(T);
      const double sim = hooks_.cost->ring_allreduce_seconds(topo_, payload);
      led.simulated_comm_seconds += sim;
      span.set_arg2("sim_seconds", sim);
      m.bytes_sent.add(moved_elems * sizeof(T));
      m.bytes_received.add(moved_elems * sizeof(T));
      m.simulated_seconds.add(sim);
    }
  } catch (const net::TransportError&) {
    rethrow_as_collective(op_name);
  }
}

void TransportComm::allreduce_sum(std::span<float> data) {
  ring_allreduce<float>(data, CollOp::AllReduceF32, "allreduce_f32",
                        [](float* mine, const float* left, std::size_t n) {
                          simd::add_inplace(mine, left, n);
                        },
                        codec_);
}

void TransportComm::allreduce_sum(std::span<Half> data) {
  ring_allreduce<Half>(data, CollOp::AllReduceF16, "allreduce_f16",
                       [](Half* mine, const Half* left, std::size_t n) {
                         half_accumulate(mine, left, n);
                       },
                       codec_);
}

void TransportComm::allreduce_max(std::span<float> data) {
  // Never coded: overflow voting must stay exact.
  ring_allreduce<float>(data, CollOp::AllReduceMaxF32, "allreduce_max",
                        [](float* mine, const float* left, std::size_t n) {
                          for (std::size_t j = 0; j < n; ++j) {
                            mine[j] = std::max(mine[j], left[j]);
                          }
                        },
                        WireCodec::None);
}

void TransportComm::allgather_bytes(std::span<const std::byte> local,
                                    std::span<std::byte> out) {
  const int g = world_size();
  ZIPFLM_CHECK(out.size() == local.size() * static_cast<std::size_t>(g),
               "allgather output must be world_size * block bytes");
  const std::size_t b = local.size();
  obs::SpanScope span("allgather", "payload_bytes", static_cast<double>(b));
  std::memcpy(out.data() + static_cast<std::size_t>(rank()) * b, local.data(),
              b);
  enter_collective(out.data() + static_cast<std::size_t>(rank()) * b, b);
  WireScope wire(*this);
  try {
    neighbor_handshake(CollOp::AllGather, b, -1);
    if (g > 1 && b != 0) {
      const int right = wrap(rank() + 1, g);
      const int left = wrap(rank() - 1, g);
      // Ring forwarding: step s sends block (rank - s) — own block at
      // step 0, then whatever arrived last step — and receives block
      // (rank - s - 1) straight into its slot.
      for (int s = 0; s + 1 < g; ++s) {
        const auto sb = static_cast<std::size_t>(wrap(rank() - s, g));
        const auto rb = static_cast<std::size_t>(wrap(rank() - s - 1, g));
        auto sent = transport_.send(right, out.subspan(sb * b, b));
        auto got = transport_.recv(left, out.subspan(rb * b, b));
        got.wait();
        sent.wait();
      }
    }
  } catch (const net::TransportError&) {
    rethrow_as_collective("allgather");
  }

  auto& led = ledger();
  ++led.allgather_calls;
  led.bytes_sent += static_cast<std::uint64_t>(g - 1) * b;
  led.bytes_received += static_cast<std::uint64_t>(g - 1) * b;
  led.max_collective_scratch_bytes = std::max<std::uint64_t>(
      led.max_collective_scratch_bytes, out.size());
  led.max_allgather_payload_bytes =
      std::max<std::uint64_t>(led.max_allgather_payload_bytes, b);
  const double sim = hooks_.cost->ring_allgather_seconds(topo_, b);
  led.simulated_comm_seconds += sim;
  span.set_arg2("sim_seconds", sim);

  auto& m = CommMetrics::get();
  m.allgather_calls.add(1);
  m.bytes_sent.add(static_cast<std::uint64_t>(g - 1) * b);
  m.bytes_received.add(static_cast<std::uint64_t>(g - 1) * b);
  m.max_scratch_bytes.set_max(static_cast<double>(out.size()));
  m.max_allgather_payload.set_max(static_cast<double>(b));
  m.simulated_seconds.add(sim);
}

void TransportComm::allgatherv_bytes(std::span<const std::byte> local,
                                     std::vector<std::byte>& out,
                                     std::vector<std::size_t>& counts) {
  const int g = world_size();
  obs::SpanScope span("allgatherv", "payload_bytes",
                      static_cast<double>(local.size()));
  enter_collective(nullptr, 0);  // own block poisoned after staging below
  WireScope wire(*this);
  std::uint64_t moved = 0;
  std::size_t max_block = 0;
  try {
    neighbor_handshake(CollOp::AllGatherV, kIgnoreBytes, -1);
    // Phase 1: ring-allgather the per-rank block sizes (the ledger
    // accounts this as 8 bytes per rank on the wire).
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(g), 0);
    sizes[static_cast<std::size_t>(rank())] = local.size();
    const int right = wrap(rank() + 1, g);
    const int left = wrap(rank() - 1, g);
    for (int s = 0; s + 1 < g; ++s) {
      const auto sb = static_cast<std::size_t>(wrap(rank() - s, g));
      const auto rb = static_cast<std::size_t>(wrap(rank() - s - 1, g));
      auto sent = transport_.send(
          right, std::as_bytes(std::span<const std::uint64_t>(&sizes[sb], 1)));
      auto got = transport_.recv(
          left, std::as_writable_bytes(std::span<std::uint64_t>(&sizes[rb], 1)));
      got.wait();
      sent.wait();
    }
    counts.resize(static_cast<std::size_t>(g));
    std::vector<std::size_t> offsets(static_cast<std::size_t>(g) + 1, 0);
    for (int r = 0; r < g; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(sizes[static_cast<std::size_t>(r)]);
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] +
          counts[static_cast<std::size_t>(r)];
    }
    out.assign(offsets.back(), std::byte{});
    if (!local.empty()) {
      std::memcpy(out.data() + offsets[static_cast<std::size_t>(rank())],
                  local.data(), local.size());
    }
    if (pending_corrupt_) {
      pending_corrupt_ = false;
      poison(out.data() + offsets[static_cast<std::size_t>(rank())],
             local.size());
    }
    // Phase 2: forward the variably-sized blocks around the ring, each
    // landing straight at its final offset.
    for (int s = 0; s + 1 < g; ++s) {
      const auto sb = static_cast<std::size_t>(wrap(rank() - s, g));
      const auto rb = static_cast<std::size_t>(wrap(rank() - s - 1, g));
      auto sent = transport_.send(
          right, std::span<const std::byte>(out.data() + offsets[sb],
                                            counts[sb]));
      auto got = transport_.recv(
          left, std::span<std::byte>(out.data() + offsets[rb], counts[rb]));
      got.wait();
      sent.wait();
      moved += counts[rb];
      max_block = std::max(max_block, counts[rb]);
    }
  } catch (const net::TransportError&) {
    rethrow_as_collective("allgatherv");
  }

  auto& led = ledger();
  ++led.allgather_calls;
  const std::uint64_t wire_accounted =
      moved + static_cast<std::uint64_t>(g - 1) * sizeof(std::size_t);
  led.bytes_sent += wire_accounted;
  led.bytes_received += wire_accounted;
  led.max_collective_scratch_bytes = std::max<std::uint64_t>(
      led.max_collective_scratch_bytes, out.size());
  led.max_allgather_payload_bytes = std::max<std::uint64_t>(
      led.max_allgather_payload_bytes, local.size());
  const double sim =
      hooks_.cost->ring_allgather_seconds(topo_, sizeof(std::size_t)) +
      static_cast<double>(g - 1) *
          hooks_.cost->ring_step_seconds(topo_, max_block);
  led.simulated_comm_seconds += sim;
  span.set_arg2("sim_seconds", sim);
  span.set_arg3("wire_bytes", static_cast<double>(wire_accounted));

  auto& m = CommMetrics::get();
  m.allgather_calls.add(1);
  m.bytes_sent.add(wire_accounted);
  m.bytes_received.add(wire_accounted);
  m.max_scratch_bytes.set_max(static_cast<double>(out.size()));
  m.max_allgather_payload.set_max(static_cast<double>(local.size()));
  m.simulated_seconds.add(sim);
}

void TransportComm::alltoallv_bytes(std::span<const std::byte> send,
                                    std::span<const std::size_t> send_counts,
                                    std::vector<std::byte>& out,
                                    std::vector<std::size_t>& recv_counts) {
  const int g = world_size();
  ZIPFLM_CHECK(send_counts.size() == static_cast<std::size_t>(g),
               "alltoallv needs one send count per rank");
  std::size_t send_total = 0;
  for (const std::size_t c : send_counts) send_total += c;
  ZIPFLM_CHECK(send_total == send.size(),
               "alltoallv send counts must sum to the payload size");
  obs::SpanScope span("alltoallv", "payload_bytes",
                      static_cast<double>(send.size()));
  // Stage the outgoing concatenation so a Corrupt fault poisons this
  // rank's contribution (the self block included) without touching the
  // caller's buffer — matching the shared-memory engine.
  std::vector<std::byte> staged(send.begin(), send.end());
  std::vector<std::size_t> send_off(static_cast<std::size_t>(g) + 1, 0);
  for (int d = 0; d < g; ++d) {
    send_off[static_cast<std::size_t>(d) + 1] =
        send_off[static_cast<std::size_t>(d)] +
        send_counts[static_cast<std::size_t>(d)];
  }
  enter_collective(staged.data(), staged.size());
  WireScope wire(*this);
  try {
    neighbor_handshake(CollOp::AllToAllV, kIgnoreBytes, -1);
    // Phase 1: pairwise per-destination sizes at ring distances
    // 1..g-1 (the ledger accounts them as 8 bytes per peer).
    recv_counts.assign(static_cast<std::size_t>(g), 0);
    recv_counts[static_cast<std::size_t>(rank())] =
        send_counts[static_cast<std::size_t>(rank())];
    for (int s = 1; s < g; ++s) {
      const int to = wrap(rank() + s, g);
      const int from = wrap(rank() - s, g);
      std::uint64_t mine = send_counts[static_cast<std::size_t>(to)];
      std::uint64_t theirs = 0;
      auto sent = transport_.send(
          to, std::as_bytes(std::span<const std::uint64_t>(&mine, 1)));
      transport_.recv_blocking(
          from, std::as_writable_bytes(std::span<std::uint64_t>(&theirs, 1)));
      sent.wait();
      recv_counts[static_cast<std::size_t>(from)] =
          static_cast<std::size_t>(theirs);
    }
    std::vector<std::size_t> offsets(static_cast<std::size_t>(g) + 1, 0);
    for (int s = 0; s < g; ++s) {
      offsets[static_cast<std::size_t>(s) + 1] =
          offsets[static_cast<std::size_t>(s)] +
          recv_counts[static_cast<std::size_t>(s)];
    }
    out.assign(offsets.back(), std::byte{});
    const std::size_t self = static_cast<std::size_t>(rank());
    if (recv_counts[self] != 0) {
      std::memcpy(out.data() + offsets[self], staged.data() + send_off[self],
                  recv_counts[self]);
    }
    // Phase 2: pairwise payload blocks over the same distance schedule,
    // each landing straight at its final offset.
    for (int s = 1; s < g; ++s) {
      const auto to = static_cast<std::size_t>(wrap(rank() + s, g));
      const auto from = static_cast<std::size_t>(wrap(rank() - s, g));
      auto sent = transport_.send(
          static_cast<int>(to),
          std::span<const std::byte>(staged.data() + send_off[to],
                                     send_counts[to]));
      auto got = transport_.recv(
          static_cast<int>(from),
          std::span<std::byte>(out.data() + offsets[from], recv_counts[from]));
      got.wait();
      sent.wait();
    }
  } catch (const net::TransportError&) {
    rethrow_as_collective("alltoallv");
  }

  auto& led = ledger();
  ++led.alltoall_calls;
  const std::uint64_t counts_wire =
      static_cast<std::uint64_t>(g - 1) * sizeof(std::size_t);
  std::uint64_t sent_wire = counts_wire;
  std::uint64_t recv_wire = counts_wire;
  for (int p = 0; p < g; ++p) {
    if (p == rank()) continue;
    sent_wire += send_counts[static_cast<std::size_t>(p)];
    recv_wire += recv_counts[static_cast<std::size_t>(p)];
  }
  led.bytes_sent += sent_wire;
  led.bytes_received += recv_wire;
  led.max_collective_scratch_bytes = std::max<std::uint64_t>(
      led.max_collective_scratch_bytes, send.size() + out.size());
  led.max_alltoall_payload_bytes = std::max<std::uint64_t>(
      led.max_alltoall_payload_bytes, send.size());
  double sim =
      hooks_.cost->ring_allgather_seconds(topo_, sizeof(std::size_t));
  for (int s = 1; s < g; ++s) {
    const auto to = static_cast<std::size_t>(wrap(rank() + s, g));
    const auto from = static_cast<std::size_t>(wrap(rank() - s, g));
    sim += hooks_.cost->ring_step_seconds(
        topo_, std::max(send_counts[to], recv_counts[from]));
  }
  led.simulated_comm_seconds += sim;
  span.set_arg2("sim_seconds", sim);
  span.set_arg3("wire_bytes", static_cast<double>(sent_wire));

  auto& m = CommMetrics::get();
  m.alltoall_calls.add(1);
  m.bytes_sent.add(sent_wire);
  m.bytes_received.add(recv_wire);
  m.max_scratch_bytes.set_max(static_cast<double>(send.size() + out.size()));
  m.max_alltoall_payload.set_max(static_cast<double>(send.size()));
  m.simulated_seconds.add(sim);
}

void TransportComm::broadcast_bytes(std::span<std::byte> data, int root) {
  const int g = world_size();
  ZIPFLM_CHECK(root >= 0 && root < g, "broadcast root out of range");
  obs::SpanScope span("broadcast", "payload_bytes",
                      static_cast<double>(data.size()));
  enter_collective(rank() == root ? data.data() : nullptr, data.size());
  WireScope wire(*this);
  try {
    neighbor_handshake(CollOp::Broadcast, data.size(), root);
    if (g > 1 && !data.empty()) {
      // Chain from the root: every rank but the root receives from its
      // left, every rank but the chain tail forwards right — the same
      // pipelined-ring shape the ledger formulas price.
      if (rank() != root) {
        transport_.recv_blocking(wrap(rank() - 1, g), data);
      }
      if (rank() != wrap(root - 1, g)) {
        transport_.send_blocking(wrap(rank() + 1, g), data);
      }
    }
  } catch (const net::TransportError&) {
    rethrow_as_collective("broadcast");
  }

  auto& led = ledger();
  ++led.broadcast_calls;
  auto& m = CommMetrics::get();
  m.broadcast_calls.add(1);
  if (rank() != wrap(root - 1, g)) {
    led.bytes_sent += data.size();
    m.bytes_sent.add(data.size());
  }
  if (rank() != root) {
    led.bytes_received += data.size();
    m.bytes_received.add(data.size());
  }
  led.max_broadcast_payload_bytes =
      std::max<std::uint64_t>(led.max_broadcast_payload_bytes, data.size());
  const double sim = hooks_.cost->broadcast_seconds(topo_, data.size());
  led.simulated_comm_seconds += sim;
  span.set_arg2("sim_seconds", sim);
  m.max_broadcast_payload.set_max(static_cast<double>(data.size()));
  m.simulated_seconds.add(sim);
}

}  // namespace zipflm
