#include "zipflm/comm/cost_model.hpp"

namespace zipflm {

CostModel CostModel::titan_x_cluster() {
  // Table II: PCIe 32 GB/s bidirectional, IB FDR 15 GB/s bidirectional.
  // Per-direction is half; a further 0.8 protocol-efficiency derating
  // reflects achievable collective bandwidth (calibration constant).
  CostModel cm;
  cm.intra_node = LinkParams{5e-6, 0.5 * 32e9 * 0.8};
  cm.inter_node = LinkParams{2e-6, 0.5 * 15e9 * 0.8};
  return cm;
}

CostModel CostModel::v100_nvlink_cluster() {
  // NVLink ~300 GB/s bidirectional per GPU; EDR-class fabric between
  // nodes (Puri et al. DGX-style pods).
  CostModel cm;
  cm.intra_node = LinkParams{3e-6, 0.5 * 300e9 * 0.8};
  cm.inter_node = LinkParams{2e-6, 0.5 * 100e9 * 0.8};
  return cm;
}

double CostModel::ring_allreduce_seconds(const Topology& topo,
                                         std::size_t buffer_bytes) const {
  const int g = topo.world_size();
  if (g <= 1 || buffer_bytes == 0) return 0.0;
  // Reduce-scatter + allgather: 2(G-1) steps of ~buffer/G bytes each.
  const std::size_t chunk =
      (buffer_bytes + static_cast<std::size_t>(g) - 1) /
      static_cast<std::size_t>(g);
  return 2.0 * (g - 1) * ring_step_seconds(topo, chunk);
}

double CostModel::ring_allgather_seconds(const Topology& topo,
                                         std::size_t bytes_per_rank) const {
  const int g = topo.world_size();
  if (g <= 1 || bytes_per_rank == 0) return 0.0;
  // (G-1) steps; each step every rank forwards one rank's block.
  return (g - 1) * ring_step_seconds(topo, bytes_per_rank);
}

double CostModel::hierarchical_allreduce_seconds(
    const Topology& topo, std::size_t buffer_bytes) const {
  if (topo.world_size() <= 1 || buffer_bytes == 0) return 0.0;
  const Topology node_topo{1, topo.gpus_per_node};
  const Topology leader_topo{topo.nodes, 1};
  return ring_allreduce_seconds(node_topo, buffer_bytes) +
         ring_allreduce_seconds(leader_topo, buffer_bytes) +
         broadcast_seconds(node_topo, buffer_bytes);
}

double CostModel::broadcast_seconds(const Topology& topo,
                                    std::size_t bytes) const {
  const int g = topo.world_size();
  if (g <= 1 || bytes == 0) return 0.0;
  // Pipelined ring broadcast: dominated by one traversal of the ring.
  return (g - 1) * bottleneck(topo).alpha_s +
         static_cast<double>(bytes) / bottleneck(topo).beta_Bps;
}

}  // namespace zipflm
