#include "zipflm/comm/ledger.hpp"

#include <sstream>

namespace zipflm {

std::string TrafficLedger::to_json() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\"bytes_sent\":" << bytes_sent
      << ",\"bytes_received\":" << bytes_received
      << ",\"allreduce_calls\":" << allreduce_calls
      << ",\"allgather_calls\":" << allgather_calls
      << ",\"broadcast_calls\":" << broadcast_calls
      << ",\"barrier_calls\":" << barrier_calls
      << ",\"max_collective_scratch_bytes\":" << max_collective_scratch_bytes
      << ",\"max_allreduce_payload_bytes\":" << max_allreduce_payload_bytes
      << ",\"max_allgather_payload_bytes\":" << max_allgather_payload_bytes
      << ",\"max_broadcast_payload_bytes\":" << max_broadcast_payload_bytes
      << ",\"simulated_comm_seconds\":" << simulated_comm_seconds
      << ",\"wire_bytes_sent\":" << wire_bytes_sent
      << ",\"wire_bytes_received\":" << wire_bytes_received
      << ",\"real_comm_seconds\":" << real_comm_seconds << '}';
  return out.str();
}

}  // namespace zipflm
