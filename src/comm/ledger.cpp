#include "zipflm/comm/ledger.hpp"

#include <sstream>

namespace zipflm {

const char* codec_slot_name(CodecSlot slot) noexcept {
  switch (slot) {
    case CodecSlot::IndexVarint:
      return "index_varint";
    case CodecSlot::Packed:
      return "packed";
    case CodecSlot::Int8:
      return "int8";
  }
  return "unknown";
}

std::string TrafficLedger::to_json() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\"bytes_sent\":" << bytes_sent
      << ",\"bytes_received\":" << bytes_received
      << ",\"allreduce_calls\":" << allreduce_calls
      << ",\"allgather_calls\":" << allgather_calls
      << ",\"alltoall_calls\":" << alltoall_calls
      << ",\"broadcast_calls\":" << broadcast_calls
      << ",\"barrier_calls\":" << barrier_calls
      << ",\"max_collective_scratch_bytes\":" << max_collective_scratch_bytes
      << ",\"max_allreduce_payload_bytes\":" << max_allreduce_payload_bytes
      << ",\"max_allgather_payload_bytes\":" << max_allgather_payload_bytes
      << ",\"max_alltoall_payload_bytes\":" << max_alltoall_payload_bytes
      << ",\"max_broadcast_payload_bytes\":" << max_broadcast_payload_bytes
      << ",\"simulated_comm_seconds\":" << simulated_comm_seconds
      << ",\"wire_bytes_sent\":" << wire_bytes_sent
      << ",\"wire_bytes_received\":" << wire_bytes_received
      << ",\"real_comm_seconds\":" << real_comm_seconds << ",\"codec\":{";
  for (std::size_t i = 0; i < kCodecSlotCount; ++i) {
    const auto& c = codec[i];
    if (i != 0) out << ',';
    out << '"' << codec_slot_name(static_cast<CodecSlot>(i))
        << "\":{\"logical_bytes\":" << c.logical_bytes
        << ",\"wire_bytes\":" << c.wire_bytes << ",\"ratio\":" << c.ratio()
        << '}';
  }
  out << "}}";
  return out.str();
}

}  // namespace zipflm
