#include "zipflm/comm/process_group.hpp"

namespace zipflm {

ProcessGroup::ProcessGroup(std::unique_ptr<net::Transport> transport,
                           Options options)
    : options_(std::move(options)), transport_(std::move(transport)) {
  transport_->set_timeout_seconds(options_.collective_timeout_seconds);
  TransportComm::Hooks hooks;
  hooks.ledger = &ledger_;
  hooks.cost = &options_.cost;
  hooks.global_rank = transport_->rank();
  comm_ = std::make_unique<TransportComm>(
      *transport_, Topology::for_world(transport_->world_size()),
      std::move(hooks));
}

ProcessGroup::~ProcessGroup() = default;

std::unique_ptr<ProcessGroup> ProcessGroup::connect(const std::string& address,
                                                    int rank, int world_size,
                                                    Options options) {
  net::RendezvousOptions rdzv;
  rdzv.timeout_seconds = options.rendezvous_timeout_seconds;
  auto transport = net::rendezvous(address, rank, world_size, rdzv);
  return std::unique_ptr<ProcessGroup>(
      new ProcessGroup(std::move(transport), std::move(options)));
}

std::unique_ptr<ProcessGroup> ProcessGroup::connect_from_env(Options options) {
  net::RendezvousOptions rdzv;
  rdzv.timeout_seconds = options.rendezvous_timeout_seconds;
  auto transport = net::rendezvous_from_env(rdzv);
  return std::unique_ptr<ProcessGroup>(
      new ProcessGroup(std::move(transport), std::move(options)));
}

}  // namespace zipflm
