#include "zipflm/comm/hierarchical.hpp"

namespace zipflm {

namespace {

template <typename T>
void hierarchical_impl(Communicator& comm, std::span<T> data) {
  Communicator* node = comm.node_comm();
  if (node == nullptr || comm.topology().nodes <= 1) {
    comm.allreduce_sum(data);
    return;
  }
  // 1. Node-local sums on every rank of the node.
  node->allreduce_sum(data);
  // 2. Global sums among the node leaders (fabric links only).
  if (Communicator* leaders = comm.leader_comm()) {
    leaders->allreduce_sum(data);
  }
  // 3. Leader (node-group rank 0) shares the global result.
  node->broadcast(data, /*root=*/0);
}

}  // namespace

void hierarchical_allreduce_sum(Communicator& comm, std::span<float> data) {
  hierarchical_impl(comm, data);
}

void hierarchical_allreduce_sum(Communicator& comm, std::span<Half> data) {
  hierarchical_impl(comm, data);
}

}  // namespace zipflm
