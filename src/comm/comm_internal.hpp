// Internals shared by the two collective engines (thread_comm.cpp's
// shared-memory rings and transport_comm.cpp's message-passing rings).
// Both must produce identical chunk schedules and feed the identical
// global metrics — so the schedule math and the cached metric handles
// live here, once.  Not installed: this header is private to src/comm.
#pragma once

#include <algorithm>
#include <cstddef>

#include "zipflm/obs/metrics.hpp"

namespace zipflm::comm_internal {

/// Global mirror of the per-rank ledgers, summed over every rank of
/// every CommWorld / ProcessGroup: the "comm/..." section of the
/// unified metrics snapshot.  Looked up once, then updated with relaxed
/// atomics — the collectives themselves never touch the registry lock.
struct CommMetrics {
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& allreduce_calls;
  obs::Counter& allgather_calls;
  obs::Counter& alltoall_calls;
  obs::Counter& broadcast_calls;
  obs::Counter& barrier_calls;
  obs::Gauge& max_scratch_bytes;
  obs::Gauge& max_allreduce_payload;
  obs::Gauge& max_allgather_payload;
  obs::Gauge& max_alltoall_payload;
  obs::Gauge& max_broadcast_payload;
  obs::Gauge& simulated_seconds;
  obs::Counter& ranks_retired;
  obs::Counter& world_rebuilds;
  // Real-transport telemetry (zero under the shared-memory backend):
  // bytes that crossed an actual wire, framing included, and wall-clock
  // seconds spent inside collectives — deliberately separate from
  // simulated_seconds so the gauges distinguish modelled from measured.
  obs::Counter& wire_bytes_sent;
  obs::Counter& wire_bytes_received;
  obs::Gauge& real_seconds;
  obs::Histogram& net_send_wait;
  obs::Histogram& net_recv_wait;
  // Wire-codec telemetry: logical vs encoded volume through any codec
  // (all slots summed) and the achieved compression of the most recent
  // coded payload, logical / wire.
  obs::Counter& codec_logical_bytes;
  obs::Counter& codec_wire_bytes;
  obs::Gauge& compression_ratio;

  static CommMetrics& get() {
    auto& r = obs::MetricsRegistry::global();
    static CommMetrics m{
        r.counter("comm/bytes_sent"),
        r.counter("comm/bytes_received"),
        r.counter("comm/allreduce_calls"),
        r.counter("comm/allgather_calls"),
        r.counter("comm/alltoall_calls"),
        r.counter("comm/broadcast_calls"),
        r.counter("comm/barrier_calls"),
        r.gauge("comm/max_collective_scratch_bytes"),
        r.gauge("comm/max_allreduce_payload_bytes"),
        r.gauge("comm/max_allgather_payload_bytes"),
        r.gauge("comm/max_alltoall_payload_bytes"),
        r.gauge("comm/max_broadcast_payload_bytes"),
        r.gauge("comm/simulated_seconds"),
        r.counter("comm/ranks_retired"),
        r.counter("comm/world_rebuilds"),
        r.counter("comm/wire_bytes_sent"),
        r.counter("comm/wire_bytes_received"),
        r.gauge("comm/real_seconds"),
        r.histogram("comm/net_send_wait_seconds"),
        r.histogram("comm/net_recv_wait_seconds"),
        r.counter("comm/codec_logical_bytes"),
        r.counter("comm/codec_wire_bytes"),
        r.gauge("comm/compression_ratio"),
    };
    return m;
  }
};

/// Element range [begin, end) of chunk c when n elements are split into
/// g chunks as evenly as possible (first n%g chunks get one extra).
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
  std::size_t size() const noexcept { return end - begin; }
};

inline ChunkRange chunk_range(std::size_t n, int g, int c) {
  const std::size_t q = n / static_cast<std::size_t>(g);
  const std::size_t rem = n % static_cast<std::size_t>(g);
  const std::size_t extra =
      std::min<std::size_t>(rem, static_cast<std::size_t>(c));
  const std::size_t begin = static_cast<std::size_t>(c) * q + extra;
  const std::size_t size = q + (static_cast<std::size_t>(c) < rem ? 1 : 0);
  return {begin, begin + size};
}

inline int wrap(int x, int g) { return ((x % g) + g) % g; }

}  // namespace zipflm::comm_internal
