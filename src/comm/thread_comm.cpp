#include "zipflm/comm/thread_comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "comm_internal.hpp"
#include "zipflm/comm/transport_comm.hpp"
#include "zipflm/net/inproc.hpp"
#include "zipflm/net/socket.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/tensor/cast.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {

using comm_internal::CommMetrics;
using comm_internal::chunk_range;
using comm_internal::wrap;

void CommWorld::Group::validate_uniform(Op op, std::size_t bytes, int root,
                                        WireCodec codec) const {
  for (const auto& slot : slots) {
    if (slot.op != op) {
      throw CollectiveMismatchError(
          "ranks invoked different collectives in the same step");
    }
    if (bytes != static_cast<std::size_t>(-1) && slot.bytes != bytes) {
      throw CollectiveMismatchError(
          "ranks invoked a collective with mismatched payload sizes");
    }
    if (root >= 0 && slot.root != root) {
      throw CollectiveMismatchError(
          "ranks invoked a rooted collective with different roots");
    }
    if (slot.codec != codec) {
      throw CollectiveMismatchError(
          "ranks invoked a collective with mismatched wire codecs");
    }
  }
}

// ---------------------------------------------------------------------------
// Per-rank communicator handle, bound to one Group.  The world handle
// owns (and lazily creates) its rank's node / leader sub-handles.
// ---------------------------------------------------------------------------

class ThreadRankComm final : public Communicator {
 public:
  /// group_rank: this rank's index within the group's member list;
  /// global_rank: index into the world's ledgers (and FaultPlan ranks).
  ThreadRankComm(CommWorld& world, CommWorld::Group& group, int group_rank,
                 int global_rank)
      : w_(world),
        group_(group),
        rank_(group_rank),
        global_rank_(global_rank) {}

  int rank() const noexcept override { return rank_; }
  int world_size() const noexcept override { return group_.size(); }
  const Topology& topology() const noexcept override { return group_.topo; }
  TrafficLedger& ledger() noexcept override {
    return w_.ledgers_[static_cast<std::size_t>(global_rank_)];
  }

  Communicator* node_comm() noexcept override {
    // Only from the world handle.  Node membership follows the *live*
    // topology: dense world rank, not the (possibly retired-riddled)
    // global numbering.
    if (&group_ != w_.world_group_.get()) return nullptr;
    if (node_ == nullptr) {
      const int node = w_.topo_.node_of(rank_);
      node_ = std::make_unique<ThreadRankComm>(
          w_, *w_.node_groups_[static_cast<std::size_t>(node)],
          rank_ % w_.topo_.gpus_per_node, global_rank_);
    }
    return node_.get();
  }

  Communicator* leader_comm() noexcept override {
    if (&group_ != w_.world_group_.get() || w_.leader_group_ == nullptr) {
      return nullptr;
    }
    if (rank_ % w_.topo_.gpus_per_node != 0) return nullptr;
    if (leaders_ == nullptr) {
      leaders_ = std::make_unique<ThreadRankComm>(
          w_, *w_.leader_group_, w_.topo_.node_of(rank_), global_rank_);
    }
    return leaders_.get();
  }

  void barrier() override {
    obs::SpanScope span("barrier");
    enter_collective(nullptr, 0);
    publish(CommWorld::Op::Barrier, nullptr, nullptr, 0, -1);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::Barrier, 0, -1, WireCodec::None);
    group_.barrier.arrive_and_wait();
    ++ledger().barrier_calls;
    CommMetrics::get().barrier_calls.add(1);
  }

  void allreduce_sum(std::span<float> data) override {
    // The reducer sees one contiguous ring chunk at a time, so the FP32
    // sum can run on the vector units; per-element order within a chunk
    // is unchanged (acc = mine + left, ascending j).
    ring_allreduce<float>(
        data, CommWorld::Op::AllReduceF32, "allreduce_f32",
        [](float* mine, const float* left, std::size_t n) {
          simd::add_inplace(mine, left, n);
        },
        codec_);
  }

  void allreduce_sum(std::span<Half> data) override {
    // Accumulate each hop in FP32, store the running partial back to
    // binary16 — the precision behaviour of an FP16-wire allreduce.
    // half_accumulate is the F16C-vectorized (bit-identical) kernel;
    // the scalar loop it replaces dominated the whole dense sync.
    ring_allreduce<Half>(
        data, CommWorld::Op::AllReduceF16, "allreduce_f16",
        [](Half* mine, const Half* left, std::size_t n) {
          half_accumulate(mine, left, n);
        },
        codec_);
  }

  void allreduce_max(std::span<float> data) override {
    // Never coded: overflow voting must stay exact regardless of the
    // armed gradient codec.
    ring_allreduce<float>(
        data, CommWorld::Op::AllReduceMaxF32, "allreduce_max",
        [](float* mine, const float* left, std::size_t n) {
          for (std::size_t j = 0; j < n; ++j) {
            mine[j] = std::max(mine[j], left[j]);
          }
        },
        WireCodec::None);
  }

  void set_wire_codec(WireCodec codec) noexcept override { codec_ = codec; }
  WireCodec wire_codec() const noexcept override { return codec_; }
  double last_codec_ratio() const noexcept override {
    return last_codec_ratio_;
  }

  void allgather_bytes(std::span<const std::byte> local,
                       std::span<std::byte> out) override {
    const int g = world_size();
    ZIPFLM_CHECK(out.size() == local.size() * static_cast<std::size_t>(g),
                 "allgather output must be world_size * block bytes");
    const std::size_t b = local.size();
    obs::SpanScope span("allgather", "payload_bytes",
                        static_cast<double>(b));
    // Stage own block, publish the output buffer so neighbours can read.
    std::memcpy(out.data() + static_cast<std::size_t>(rank_) * b, local.data(),
                b);
    enter_collective(out.data() + static_cast<std::size_t>(rank_) * b, b);
    publish(CommWorld::Op::AllGather, local.data(), out.data(), b, -1);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::AllGather, b, -1, WireCodec::None);

    // Every rank staged its own block before publishing, so all source
    // blocks are final the moment the publish barrier clears: copy each
    // straight from its owner (who never writes its own block again)
    // instead of forwarding hop by hop.  The closing rendezvous keeps
    // every output buffer pinned until all readers are done.
    for (int s = 0; s + 1 < g; ++s) {
      const int blk = wrap(rank_ - 1 - s, g);
      const std::byte* owner =
          group_.slots[static_cast<std::size_t>(blk)].dst;
      std::memcpy(out.data() + static_cast<std::size_t>(blk) * b,
                  owner + static_cast<std::size_t>(blk) * b, b);
    }
    group_.barrier.arrive_and_wait();

    auto& led = ledger();
    ++led.allgather_calls;
    led.bytes_sent += static_cast<std::uint64_t>(g - 1) * b;
    led.bytes_received += static_cast<std::uint64_t>(g - 1) * b;
    led.max_collective_scratch_bytes = std::max<std::uint64_t>(
        led.max_collective_scratch_bytes, out.size());
    led.max_allgather_payload_bytes =
        std::max<std::uint64_t>(led.max_allgather_payload_bytes, b);
    const double sim = w_.cost_.ring_allgather_seconds(group_.topo, b);
    led.simulated_comm_seconds += sim;
    span.set_arg2("sim_seconds", sim);

    auto& m = CommMetrics::get();
    m.allgather_calls.add(1);
    m.bytes_sent.add(static_cast<std::uint64_t>(g - 1) * b);
    m.bytes_received.add(static_cast<std::uint64_t>(g - 1) * b);
    m.max_scratch_bytes.set_max(static_cast<double>(out.size()));
    m.max_allgather_payload.set_max(static_cast<double>(b));
    m.simulated_seconds.add(sim);
  }

  void allgatherv_bytes(std::span<const std::byte> local,
                        std::vector<std::byte>& out,
                        std::vector<std::size_t>& counts) override {
    const int g = world_size();
    obs::SpanScope span("allgatherv", "payload_bytes",
                        static_cast<double>(local.size()));
    enter_collective(nullptr, 0);  // own block poisoned after staging below
    // Phase 1: exchange block sizes (a small fixed-size allgather; the
    // ledger accounts it as 8 bytes per rank on the wire).
    publish(CommWorld::Op::AllGatherV, local.data(), nullptr, local.size(),
            -1);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::AllGatherV, kIgnoreBytes, -1,
                            WireCodec::None);
    counts.resize(static_cast<std::size_t>(g));
    std::vector<std::size_t> offsets(static_cast<std::size_t>(g) + 1, 0);
    for (int r = 0; r < g; ++r) {
      counts[static_cast<std::size_t>(r)] =
          group_.slots[static_cast<std::size_t>(r)].bytes;
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] +
          counts[static_cast<std::size_t>(r)];
    }
    out.assign(offsets.back(), std::byte{});
    if (!local.empty()) {
      std::memcpy(out.data() + offsets[static_cast<std::size_t>(rank_)],
                  local.data(), local.size());
    }
    if (pending_corrupt_) {
      pending_corrupt_ = false;
      poison(out.data() + offsets[static_cast<std::size_t>(rank_)],
             local.size());
    }
    // Phase 2: publish the (resized) output buffer, then copy every
    // block straight from its owner's staged output — final as of the
    // publish barrier, and owners never rewrite their own block — with
    // one closing rendezvous in place of the hop-by-hop forwarding.
    group_.slots[static_cast<std::size_t>(rank_)].dst = out.data();
    group_.barrier.arrive_and_wait();

    std::uint64_t moved = 0;
    std::size_t max_block = 0;
    for (int s = 0; s + 1 < g; ++s) {
      const int blk = wrap(rank_ - 1 - s, g);
      const std::size_t sz = counts[static_cast<std::size_t>(blk)];
      if (sz != 0) {
        std::memcpy(out.data() + offsets[static_cast<std::size_t>(blk)],
                    group_.slots[static_cast<std::size_t>(blk)].dst +
                        offsets[static_cast<std::size_t>(blk)],
                    sz);
      }
      moved += sz;
      max_block = std::max(max_block, sz);
    }
    group_.barrier.arrive_and_wait();

    auto& led = ledger();
    ++led.allgather_calls;
    const std::uint64_t wire =
        moved + static_cast<std::uint64_t>(g - 1) * sizeof(std::size_t);
    led.bytes_sent += wire;
    led.bytes_received += wire;
    led.max_collective_scratch_bytes = std::max<std::uint64_t>(
        led.max_collective_scratch_bytes, out.size());
    led.max_allgather_payload_bytes = std::max<std::uint64_t>(
        led.max_allgather_payload_bytes, local.size());
    const double sim =
        w_.cost_.ring_allgather_seconds(group_.topo, sizeof(std::size_t)) +
        static_cast<double>(g - 1) *
            w_.cost_.ring_step_seconds(group_.topo, max_block);
    led.simulated_comm_seconds += sim;
    span.set_arg2("sim_seconds", sim);

    auto& m = CommMetrics::get();
    m.allgather_calls.add(1);
    m.bytes_sent.add(wire);
    m.bytes_received.add(wire);
    m.max_scratch_bytes.set_max(static_cast<double>(out.size()));
    m.max_allgather_payload.set_max(static_cast<double>(local.size()));
    m.simulated_seconds.add(sim);
  }

  void alltoallv_bytes(std::span<const std::byte> send,
                       std::span<const std::size_t> send_counts,
                       std::vector<std::byte>& out,
                       std::vector<std::size_t>& recv_counts) override {
    const int g = world_size();
    ZIPFLM_CHECK(send_counts.size() == static_cast<std::size_t>(g),
                 "alltoallv needs one send count per rank");
    std::size_t send_total = 0;
    for (const std::size_t c : send_counts) send_total += c;
    ZIPFLM_CHECK(send_total == send.size(),
                 "alltoallv send counts must sum to the payload size");
    obs::SpanScope span("alltoallv", "payload_bytes",
                        static_cast<double>(send.size()));
    // Stage the outgoing concatenation so a Corrupt fault poisons this
    // rank's contribution (the self block included) without touching
    // the caller's buffer.
    std::vector<std::byte> staged(send.begin(), send.end());
    enter_collective(staged.data(), staged.size());
    // One slot carries both publications: the staged payload (src) and
    // the per-destination byte counts (dst) — peers read both after the
    // barrier, so a single rendezvous replaces the size allgather the
    // transport engine runs hop by hop.
    publish(CommWorld::Op::AllToAllV, staged.data(),
            reinterpret_cast<std::byte*>(
                const_cast<std::size_t*>(send_counts.data())),
            staged.size(), -1);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::AllToAllV, kIgnoreBytes, -1,
                            WireCodec::None);

    recv_counts.resize(static_cast<std::size_t>(g));
    std::vector<std::size_t> offsets(static_cast<std::size_t>(g) + 1, 0);
    for (int s = 0; s < g; ++s) {
      const auto* peer_counts = reinterpret_cast<const std::size_t*>(
          group_.slots[static_cast<std::size_t>(s)].dst);
      recv_counts[static_cast<std::size_t>(s)] =
          peer_counts[static_cast<std::size_t>(rank_)];
      offsets[static_cast<std::size_t>(s) + 1] =
          offsets[static_cast<std::size_t>(s)] +
          recv_counts[static_cast<std::size_t>(s)];
    }
    out.assign(offsets.back(), std::byte{});

    // A peer's block bound for this rank starts, inside that peer's
    // staging, at the sum of the counts it addressed to lower ranks.
    auto peer_block = [&](int s) -> std::pair<const std::byte*, std::size_t> {
      const auto& slot = group_.slots[static_cast<std::size_t>(s)];
      const auto* counts = reinterpret_cast<const std::size_t*>(slot.dst);
      std::size_t off = 0;
      for (int d = 0; d < rank_; ++d) {
        off += counts[static_cast<std::size_t>(d)];
      }
      return {slot.src + off, counts[static_cast<std::size_t>(rank_)]};
    };

    const auto [self_src, self_sz] = peer_block(rank_);
    if (self_sz != 0) {
      std::memcpy(out.data() + offsets[static_cast<std::size_t>(rank_)],
                  self_src, self_sz);
    }
    for (int s = 0; s + 1 < g; ++s) {
      const int blk = wrap(rank_ - 1 - s, g);
      const auto [src, sz] = peer_block(blk);
      if (sz != 0) {
        std::memcpy(out.data() + offsets[static_cast<std::size_t>(blk)], src,
                    sz);
      }
    }
    group_.barrier.arrive_and_wait();

    auto& led = ledger();
    ++led.alltoall_calls;
    const std::uint64_t counts_wire =
        static_cast<std::uint64_t>(g - 1) * sizeof(std::size_t);
    std::uint64_t sent_wire = counts_wire;
    std::uint64_t recv_wire = counts_wire;
    for (int p = 0; p < g; ++p) {
      if (p == rank_) continue;
      sent_wire += send_counts[static_cast<std::size_t>(p)];
      recv_wire += recv_counts[static_cast<std::size_t>(p)];
    }
    led.bytes_sent += sent_wire;
    led.bytes_received += recv_wire;
    led.max_collective_scratch_bytes = std::max<std::uint64_t>(
        led.max_collective_scratch_bytes, send.size() + out.size());
    led.max_alltoall_payload_bytes = std::max<std::uint64_t>(
        led.max_alltoall_payload_bytes, send.size());
    // Pairwise exchange at ring distances 1..g-1: each step is priced
    // by its larger direction, after a small size allgather — the same
    // closed form the transport engine computes from its own counts.
    double sim = w_.cost_.ring_allgather_seconds(group_.topo,
                                                 sizeof(std::size_t));
    for (int s = 1; s < g; ++s) {
      const std::size_t to = static_cast<std::size_t>(wrap(rank_ + s, g));
      const std::size_t from = static_cast<std::size_t>(wrap(rank_ - s, g));
      sim += w_.cost_.ring_step_seconds(
          group_.topo, std::max(send_counts[to], recv_counts[from]));
    }
    led.simulated_comm_seconds += sim;
    span.set_arg2("sim_seconds", sim);

    auto& m = CommMetrics::get();
    m.alltoall_calls.add(1);
    m.bytes_sent.add(sent_wire);
    m.bytes_received.add(recv_wire);
    m.max_scratch_bytes.set_max(static_cast<double>(send.size() + out.size()));
    m.max_alltoall_payload.set_max(static_cast<double>(send.size()));
    m.simulated_seconds.add(sim);
  }

  void broadcast_bytes(std::span<std::byte> data, int root) override {
    const int g = world_size();
    ZIPFLM_CHECK(root >= 0 && root < g, "broadcast root out of range");
    obs::SpanScope span("broadcast", "payload_bytes",
                        static_cast<double>(data.size()));
    enter_collective(rank_ == root ? data.data() : nullptr, data.size());
    publish(CommWorld::Op::Broadcast, data.data(), data.data(), data.size(),
            root);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::Broadcast, data.size(), root,
                            WireCodec::None);
    group_.barrier.arrive_and_wait();
    if (rank_ != root && !data.empty()) {
      std::memcpy(data.data(),
                  group_.slots[static_cast<std::size_t>(root)].dst,
                  data.size());
    }
    group_.barrier.arrive_and_wait();

    auto& led = ledger();
    ++led.broadcast_calls;
    auto& m = CommMetrics::get();
    m.broadcast_calls.add(1);
    // Pipelined-ring accounting: every rank except the pipeline tail
    // forwards the payload once.
    if (rank_ != wrap(root - 1, g)) {
      led.bytes_sent += data.size();
      m.bytes_sent.add(data.size());
    }
    if (rank_ != root) {
      led.bytes_received += data.size();
      m.bytes_received.add(data.size());
    }
    led.max_broadcast_payload_bytes =
        std::max<std::uint64_t>(led.max_broadcast_payload_bytes, data.size());
    const double sim = w_.cost_.broadcast_seconds(group_.topo, data.size());
    led.simulated_comm_seconds += sim;
    span.set_arg2("sim_seconds", sim);
    m.max_broadcast_payload.set_max(static_cast<double>(data.size()));
    m.simulated_seconds.add(sim);
  }

 private:
  // allgatherv blocks legitimately differ in size across ranks.
  static constexpr std::size_t kIgnoreBytes = static_cast<std::size_t>(-1);

  /// Fault hook at the head of every collective: a Kill fault throws
  /// SimulatedRankDeath (the thread exits without arriving at the
  /// barrier, so survivors only learn of it through the timeout), a
  /// Delay fault sleeps, a Corrupt fault overwrites the rank's own
  /// contribution (`buf`, when the caller has one) with 0xFF bytes —
  /// all-NaN when reinterpreted as FP32/FP16 payloads.
  void enter_collective(std::byte* buf, std::size_t bytes) {
    const CommWorld::FaultAction act = w_.next_fault(global_rank_);
    if (!act.armed) return;
    switch (act.kind) {
      case FaultKind::Kill:
        throw SimulatedRankDeath{global_rank_};
      case FaultKind::Delay:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(act.delay_seconds));
        break;
      case FaultKind::Corrupt:
        if (buf != nullptr) {
          poison(buf, bytes);
        } else {
          pending_corrupt_ = true;  // applied once a buffer exists
        }
        break;
    }
  }

  static void poison(std::byte* buf, std::size_t bytes) {
    if (buf != nullptr && bytes != 0) std::memset(buf, 0xFF, bytes);
  }

  void publish(CommWorld::Op op, const std::byte* src, std::byte* dst,
               std::size_t bytes, int root,
               WireCodec codec = WireCodec::None) {
    auto& slot = group_.slots[static_cast<std::size_t>(rank_)];
    slot.op = op;
    slot.src = src;
    slot.dst = dst;
    slot.bytes = bytes;
    slot.root = root;
    slot.codec = codec;
  }

  /// Reduce steps hand the reducer a whole contiguous chunk:
  /// reduce(mine, left, count) must combine left's partial into mine.
  ///
  /// With a wire codec armed the transport ring moves ENCODED chunks.
  /// This engine has no wire, so for the lossless codec the arithmetic
  /// is untouched (decode(encode(x)) == x by contract) and only the
  /// accounting changes; for INT8 each receiver reproduces the
  /// transport operand by round-tripping the left neighbour's published
  /// partial itself (a read-only, deterministic computation), and after
  /// the closing rendezvous every final chunk is round-tripped in place
  /// — exactly the bytes a transport rank decodes from the owner's
  /// encoding.  Both engines therefore stay bitwise identical under
  /// every codec.
  template <typename T, typename Red>
  void ring_allreduce(std::span<T> data, CommWorld::Op op, const char* op_name,
                      Red reduce, WireCodec codec) {
    const int g = world_size();
    const std::size_t payload = data.size() * sizeof(T);
    obs::SpanScope span(op_name, "payload_bytes",
                        static_cast<double>(payload));
    enter_collective(reinterpret_cast<std::byte*>(data.data()),
                     data.size() * sizeof(T));
    publish(op, reinterpret_cast<const std::byte*>(data.data()),
            reinterpret_cast<std::byte*>(data.data()),
            data.size() * sizeof(T), -1, codec);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(op, data.size() * sizeof(T), -1, codec);
    // No second rendezvous before the ring: hop 0 reads only the left
    // neighbour's ORIGINAL chunk (published and stable before the
    // barrier above) and writes a chunk of its own buffer that no
    // neighbour reads at hop 0, so validation flows straight into the
    // reduce-scatter.  Every rendezvous here is a scheduling point for
    // all ranks' threads — on an oversubscribed host each one costs a
    // wake-up convoy, so the collective keeps only the ones the data
    // dependencies require.

    auto& led = ledger();
    ++led.allreduce_calls;
    led.max_allreduce_payload_bytes =
        std::max<std::uint64_t>(led.max_allreduce_payload_bytes, payload);
    auto& m = CommMetrics::get();
    m.allreduce_calls.add(1);
    m.max_allreduce_payload.set_max(static_cast<double>(payload));
    if (g > 1 && !data.empty()) {
      const int left = wrap(rank_ - 1, g);
      T* left_data = reinterpret_cast<T*>(
          group_.slots[static_cast<std::size_t>(left)].dst);
      const std::size_t n = data.size();
      std::uint64_t moved_elems = 0;

      const bool lossy = codec == WireCodec::Int8;
      thread_local std::vector<std::byte> enc;
      thread_local std::vector<T> dec;

      // Phase 1: reduce-scatter.  Step s: accumulate the left
      // neighbour's partial of chunk (rank - s - 1) into ours.  Under
      // INT8 the operand is the decoded image of the encoded partial —
      // the identical bytes the transport receiver decodes, computed
      // here from the same published chunk.
      for (int s = 0; s + 1 < g; ++s) {
        const int c = wrap(rank_ - s - 1, g);
        const auto r = chunk_range(n, g, c);
        if (r.size() != 0) {
          if (lossy) {
            encode_grad_chunk(
                codec, std::span<const T>(left_data + r.begin, r.size()), enc);
            dec.resize(r.size());
            decode_grad_chunk(codec, std::span<const std::byte>(enc),
                              std::span<T>(dec.data(), r.size()));
            reduce(data.data() + r.begin, dec.data(), r.size());
          } else {
            reduce(data.data() + r.begin, left_data + r.begin, r.size());
          }
        }
        // We simultaneously "sent" chunk (rank - s) to the right.
        moved_elems += chunk_range(n, g, wrap(rank_ - s, g)).size();
        group_.barrier.arrive_and_wait();
      }
      // Phase 2: allgather.  After the final reduce-scatter barrier
      // every chunk is complete: chunk c lives on rank wrap(c - 1), and
      // during this phase rank r only writes chunks of its own buffer
      // that no peer reads (peers read r's buffer solely at chunk
      // wrap(r + 1) — r's completed chunk, untouched here).  So each
      // rank copies straight from every chunk's owner — the same bytes
      // the hop-by-hop ring forwarding delivered, with one closing
      // rendezvous instead of g - 1.
      for (int s = 0; s + 1 < g; ++s) {
        const int c = wrap(rank_ - s, g);
        const auto r = chunk_range(n, g, c);
        if (r.size() != 0) {
          const T* owner = reinterpret_cast<T*>(
              group_.slots[static_cast<std::size_t>(wrap(c - 1, g))].dst);
          std::memcpy(data.data() + r.begin, owner + r.begin,
                      r.size() * sizeof(T));
        }
        moved_elems += chunk_range(n, g, wrap(rank_ + 1 - s, g)).size();
      }

      // Wire-codec bookkeeping.  Every final chunk is now staged
      // locally and bitwise identical on every rank, so encoding here
      // gives every rank the same sizes (for the wire model and the
      // lockstep compression-ratio feedback) and, for INT8, the same
      // owner encoding to round-trip from.  Reads only local data, so
      // it can overlap the other ranks' copy loops.
      std::uint64_t enc_total = 0;
      std::uint64_t wire_model = 0;
      thread_local std::vector<std::vector<std::byte>> final_enc;
      if (codec != WireCodec::None) {
        final_enc.resize(static_cast<std::size_t>(g));
        std::vector<std::uint64_t> sizes(static_cast<std::size_t>(g), 0);
        for (int c = 0; c < g; ++c) {
          const auto r = chunk_range(n, g, c);
          auto& e = final_enc[static_cast<std::size_t>(c)];
          e.clear();
          if (r.size() == 0) continue;
          encode_grad_chunk(
              codec, std::span<const T>(data.data() + r.begin, r.size()), e);
          sizes[static_cast<std::size_t>(c)] = e.size();
          enc_total += e.size();
        }
        // Model the transport ring's per-rank wire volume: each hop of
        // either phase moves one encoded chunk plus a 4-byte size
        // prefix (phase-1 partials are priced at the final-chunk size;
        // exact for INT8, an estimate for the packed codec).
        for (int s = 0; s + 1 < g; ++s) {
          wire_model += sizes[static_cast<std::size_t>(wrap(rank_ - s, g))] + 4;
          wire_model +=
              sizes[static_cast<std::size_t>(wrap(rank_ + 1 - s, g))] + 4;
        }
      }
      group_.barrier.arrive_and_wait();
      if (lossy) {
        // Allgather leg of the coded ring: every rank's result for
        // chunk c is decode(encode(final_c)) — owner included.
        for (int c = 0; c < g; ++c) {
          const auto r = chunk_range(n, g, c);
          if (r.size() == 0) continue;
          decode_grad_chunk(
              codec,
              std::span<const std::byte>(final_enc[static_cast<std::size_t>(c)]),
              std::span<T>(data.data() + r.begin, r.size()));
        }
      }

      led.bytes_sent += moved_elems * sizeof(T);
      led.bytes_received += moved_elems * sizeof(T);
      const double sim =
          w_.cost_.ring_allreduce_seconds(group_.topo, payload);
      led.simulated_comm_seconds += sim;
      span.set_arg2("sim_seconds", sim);
      m.bytes_sent.add(moved_elems * sizeof(T));
      m.bytes_received.add(moved_elems * sizeof(T));
      m.simulated_seconds.add(sim);
      if (codec != WireCodec::None) {
        record_codec_traffic(led,
                             codec == WireCodec::Packed ? CodecSlot::Packed
                                                        : CodecSlot::Int8,
                             moved_elems * sizeof(T), wire_model);
        last_codec_ratio_ =
            payload == 0 ? 0.0
                         : static_cast<double>(enc_total) /
                               static_cast<double>(payload);
      }
    }
  }

  CommWorld& w_;
  CommWorld::Group& group_;
  const int rank_;
  const int global_rank_;
  WireCodec codec_ = WireCodec::None;
  double last_codec_ratio_ = 0.0;
  bool pending_corrupt_ = false;
  std::unique_ptr<ThreadRankComm> node_;
  std::unique_ptr<ThreadRankComm> leaders_;
};

// ---------------------------------------------------------------------------
// CommWorld
// ---------------------------------------------------------------------------

CommWorld::CommWorld(int world_size, Options options)
    : world_size_(world_size),
      topo_(options.topo_set ? options.topo : Topology::for_world(world_size)),
      cost_(options.cost),
      backend_(options.backend),
      timeout_seconds_(options.collective_timeout_seconds),
      ledgers_(static_cast<std::size_t>(world_size)),
      fault_cursor_(static_cast<std::size_t>(world_size), 0) {
  ZIPFLM_CHECK(world_size > 0, "world size must be positive");
  ZIPFLM_CHECK(topo_.world_size() == world_size,
               "topology must match world size");
  ZIPFLM_CHECK(timeout_seconds_ >= 0.0,
               "collective timeout must be non-negative");
  live_.resize(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    live_[static_cast<std::size_t>(r)] = r;
  }
  rebuild_groups();
}

CommWorld::~CommWorld() = default;

void CommWorld::rebuild_groups() {
  const int live = static_cast<int>(live_.size());
  ZIPFLM_CHECK(live > 0, "no surviving ranks in the communicator world");
  // After a retirement the survivors no longer fill whole nodes, so the
  // degraded world is re-formed flat (one node spanning all survivors);
  // the pristine world keeps its configured topology.
  if (live != world_size_) topo_ = Topology{1, live};

  world_group_ = std::make_unique<Group>(live, topo_);
  node_groups_.clear();
  node_groups_.reserve(static_cast<std::size_t>(topo_.nodes));
  for (int n = 0; n < topo_.nodes; ++n) {
    node_groups_.push_back(std::make_unique<Group>(
        topo_.gpus_per_node, Topology{1, topo_.gpus_per_node}));
  }
  leader_group_ =
      topo_.nodes > 1
          ? std::make_unique<Group>(topo_.nodes, Topology{topo_.nodes, 1})
          : nullptr;
  set_collective_timeout(timeout_seconds_);
}

void CommWorld::inject_faults(FaultPlan plan) {
  for (const FaultEvent& e : plan.events) {
    ZIPFLM_CHECK(e.rank >= 0 && e.rank < world_size_,
                 "fault plan rank out of range");
    ZIPFLM_CHECK(e.kind != FaultKind::Delay || e.delay_seconds >= 0.0,
                 "fault delay must be non-negative");
  }
  plan_ = std::move(plan);
  plan_consumed_.assign(plan_.events.size(), 0);
}

void CommWorld::set_collective_timeout(double seconds) {
  ZIPFLM_CHECK(seconds >= 0.0, "collective timeout must be non-negative");
  timeout_seconds_ = seconds;
  world_group_->barrier.set_timeout_seconds(seconds);
  for (auto& g : node_groups_) g->barrier.set_timeout_seconds(seconds);
  if (leader_group_ != nullptr) {
    leader_group_->barrier.set_timeout_seconds(seconds);
  }
}

CommWorld::FaultAction CommWorld::next_fault(int global_rank) {
  // Only global_rank's own thread calls this, so the cursor needs no
  // synchronization; the plan itself is immutable during run().
  const std::uint64_t call =
      fault_cursor_[static_cast<std::size_t>(global_rank)]++;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    // Filter on rank FIRST: a consumed flag is then only ever touched
    // by its own event's rank (one byte per flag, no false sharing of
    // bits), so concurrent ranks scanning the plan never race.
    if (e.rank != global_rank || e.at_collective != call ||
        plan_consumed_[i] != 0) {
      continue;
    }
    plan_consumed_[i] = 1;
    return FaultAction{e.kind, e.delay_seconds, true};
  }
  return FaultAction{};
}

void CommWorld::run(const std::function<void(Communicator&)>& fn) {
  if (backend_ != CommBackend::SharedMem) {
    run_transport(fn);
    return;
  }
  world_group_->barrier.reset();
  for (auto& g : node_groups_) g->barrier.reset();
  if (leader_group_ != nullptr) leader_group_->barrier.reset();

  const std::size_t live = live_.size();
  std::vector<std::exception_ptr> errors(live);
  std::vector<int> died;
  std::mutex died_mutex;
  std::vector<std::thread> threads;
  threads.reserve(live);
  for (std::size_t i = 0; i < live; ++i) {
    threads.emplace_back([this, &fn, &errors, &died, &died_mutex, i] {
#if ZIPFLM_TRACE
      // Lanes are keyed by global rank, so a rank's events land in the
      // same Perfetto track across every run() of its lifetime.
      obs::set_thread_lane("rank " + std::to_string(live_[i]), live_[i]);
#endif
      ThreadRankComm comm(*this, *world_group_, static_cast<int>(i),
                          live_[i]);
      try {
        fn(comm);
      } catch (const SimulatedRankDeath& death) {
        // A killed rank dies silently: no abort, no error — the
        // survivors discover the loss through the collective timeout.
        std::scoped_lock lock(died_mutex);
        died.push_back(death.rank);
      } catch (...) {
        errors[i] = std::current_exception();
        world_group_->barrier.abort();
        for (auto& g : node_groups_) g->barrier.abort();
        if (leader_group_ != nullptr) leader_group_->barrier.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  finish_run(died, errors, /*transport_victims=*/false);
}

void CommWorld::run_transport(const std::function<void(Communicator&)>& fn) {
  const std::size_t live = live_.size();
  // A fresh mesh per run: streams poisoned by a failed or timed-out
  // previous run are discarded wholesale, exactly as rebuild_groups()
  // resets the shared-memory barriers.
  std::vector<std::unique_ptr<net::Transport>> endpoints;
  if (backend_ == CommBackend::Socket) {
    endpoints = net::socketpair_mesh(static_cast<int>(live));
  } else {
    net::InProcHub hub(static_cast<int>(live));
    endpoints.reserve(live);
    for (std::size_t i = 0; i < live; ++i) {
      endpoints.push_back(hub.endpoint(static_cast<int>(i)));
    }
  }
  for (auto& ep : endpoints) ep->set_timeout_seconds(timeout_seconds_);

  std::vector<std::exception_ptr> errors(live);
  std::vector<int> died;
  std::mutex died_mutex;
  std::vector<std::thread> threads;
  threads.reserve(live);
  for (std::size_t i = 0; i < live; ++i) {
    threads.emplace_back(
        [this, &fn, &errors, &died, &died_mutex, &endpoints, i] {
#if ZIPFLM_TRACE
          obs::set_thread_lane("rank " + std::to_string(live_[i]), live_[i]);
#endif
          net::Transport& ep = *endpoints[i];
          const int global = live_[i];
          TransportComm::Hooks hooks;
          hooks.ledger = &ledgers_[static_cast<std::size_t>(global)];
          hooks.cost = &cost_;
          hooks.global_rank = global;
          hooks.fault = [this, global] {
            const FaultAction act = next_fault(global);
            return TransportFault{act.kind, act.delay_seconds, act.armed};
          };
          TransportComm comm(ep, topo_, std::move(hooks));
          try {
            fn(comm);
          } catch (const SimulatedRankDeath& death) {
            // A killed rank dies silently; closing its endpoint below
            // is what the survivors observe — as PeerClosedError, i.e.
            // CollectiveTimeoutError, the same signal a dead process
            // gives over a real wire.
            std::scoped_lock lock(died_mutex);
            died.push_back(death.rank);
          } catch (...) {
            errors[i] = std::current_exception();
          }
          // Close on every exit path: success (peers may still drain
          // what we already sent), death, and error (peers unblock
          // instead of waiting out their timeout).
          ep.close();
        });
  }
  for (auto& t : threads) t.join();
  finish_run(died, errors, /*transport_victims=*/true);
}

void CommWorld::finish_run(std::vector<int>& died,
                           std::vector<std::exception_ptr>& errors,
                           bool transport_victims) {
  // Retire killed ranks before rethrowing, so the caller can roll back
  // and immediately re-run over the survivors.
  if (!died.empty()) {
    std::sort(died.begin(), died.end());
    auto& m = CommMetrics::get();
    for (const int r : died) {
      failed_.push_back(r);
      live_.erase(std::remove(live_.begin(), live_.end(), r), live_.end());
      ZIPFLM_TRACE_INSTANT("rank_retired", "rank", static_cast<double>(r));
      m.ranks_retired.add(1);
    }
    rebuild_groups();
    ZIPFLM_TRACE_INSTANT("world_rebuilt", "live_ranks",
                         static_cast<double>(live_.size()));
    m.world_rebuilds.add(1);
  }

  // Prefer the originating error over victims: BarrierAborted always;
  // on a transport backend CollectiveTimeoutError too, since a rank
  // failing for any reason closes its endpoint and every peer then
  // surfaces the loss as a timeout.
  std::exception_ptr any;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!any) any = e;
    try {
      std::rethrow_exception(e);
    } catch (const BarrierAborted&) {
      // victim; keep looking for the root cause
    } catch (const CollectiveTimeoutError&) {
      if (!transport_victims) std::rethrow_exception(e);
      // transport victim; keep looking for the root cause
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (any) std::rethrow_exception(any);
}

const TrafficLedger& CommWorld::ledger(int rank) const {
  ZIPFLM_CHECK(rank >= 0 && rank < world_size_, "ledger rank out of range");
  return ledgers_[static_cast<std::size_t>(rank)];
}

TrafficLedger CommWorld::total_ledger() const {
  TrafficLedger total;
  for (const auto& l : ledgers_) total += l;
  return total;
}

double CommWorld::max_simulated_comm_seconds() const {
  double mx = 0.0;
  for (const auto& l : ledgers_) {
    mx = std::max(mx, l.simulated_comm_seconds);
  }
  return mx;
}

void CommWorld::reset_ledgers() {
  for (auto& l : ledgers_) l.reset();
}

}  // namespace zipflm
