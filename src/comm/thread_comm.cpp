#include "zipflm/comm/thread_comm.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "zipflm/tensor/simd.hpp"

namespace zipflm {

namespace {

/// Element range [begin, end) of chunk c when n elements are split into
/// g chunks as evenly as possible (first n%g chunks get one extra).
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
  std::size_t size() const noexcept { return end - begin; }
};

ChunkRange chunk_range(std::size_t n, int g, int c) {
  const std::size_t q = n / static_cast<std::size_t>(g);
  const std::size_t rem = n % static_cast<std::size_t>(g);
  const std::size_t extra =
      std::min<std::size_t>(rem, static_cast<std::size_t>(c));
  const std::size_t begin = static_cast<std::size_t>(c) * q + extra;
  const std::size_t size = q + (static_cast<std::size_t>(c) < rem ? 1 : 0);
  return {begin, begin + size};
}

int wrap(int x, int g) { return ((x % g) + g) % g; }

}  // namespace

void CommWorld::Group::validate_uniform(Op op, std::size_t bytes,
                                        int root) const {
  for (const auto& slot : slots) {
    if (slot.op != op) {
      throw CollectiveMismatchError(
          "ranks invoked different collectives in the same step");
    }
    if (bytes != static_cast<std::size_t>(-1) && slot.bytes != bytes) {
      throw CollectiveMismatchError(
          "ranks invoked a collective with mismatched payload sizes");
    }
    if (root >= 0 && slot.root != root) {
      throw CollectiveMismatchError(
          "ranks invoked a rooted collective with different roots");
    }
  }
}

// ---------------------------------------------------------------------------
// Per-rank communicator handle, bound to one Group.  The world handle
// owns (and lazily creates) its rank's node / leader sub-handles.
// ---------------------------------------------------------------------------

class ThreadRankComm final : public Communicator {
 public:
  /// group_rank: this rank's index within the group's member list;
  /// global_rank: index into the world's ledgers.
  ThreadRankComm(CommWorld& world, CommWorld::Group& group, int group_rank,
                 int global_rank)
      : w_(world),
        group_(group),
        rank_(group_rank),
        global_rank_(global_rank) {}

  int rank() const noexcept override { return rank_; }
  int world_size() const noexcept override { return group_.size(); }
  const Topology& topology() const noexcept override { return group_.topo; }
  TrafficLedger& ledger() noexcept override {
    return w_.ledgers_[static_cast<std::size_t>(global_rank_)];
  }

  Communicator* node_comm() noexcept override {
    if (&group_ != &w_.world_group_) return nullptr;  // only from the world
    if (node_ == nullptr) {
      const int node = w_.topo_.node_of(global_rank_);
      node_ = std::make_unique<ThreadRankComm>(
          w_, *w_.node_groups_[static_cast<std::size_t>(node)],
          global_rank_ % w_.topo_.gpus_per_node, global_rank_);
    }
    return node_.get();
  }

  Communicator* leader_comm() noexcept override {
    if (&group_ != &w_.world_group_ || w_.leader_group_ == nullptr) {
      return nullptr;
    }
    if (global_rank_ % w_.topo_.gpus_per_node != 0) return nullptr;
    if (leaders_ == nullptr) {
      leaders_ = std::make_unique<ThreadRankComm>(
          w_, *w_.leader_group_, w_.topo_.node_of(global_rank_),
          global_rank_);
    }
    return leaders_.get();
  }

  void barrier() override {
    publish(CommWorld::Op::Barrier, nullptr, nullptr, 0, -1);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::Barrier, 0, -1);
    group_.barrier.arrive_and_wait();
    ++ledger().barrier_calls;
  }

  void allreduce_sum(std::span<float> data) override {
    // The reducer sees one contiguous ring chunk at a time, so the FP32
    // sum can run on the vector units; per-element order within a chunk
    // is unchanged (acc = mine + left, ascending j).
    ring_allreduce<float>(data, CommWorld::Op::AllReduceF32,
                          [](float* mine, const float* left, std::size_t n) {
                            simd::add_inplace(mine, left, n);
                          });
  }

  void allreduce_sum(std::span<Half> data) override {
    // Accumulate each hop in FP32, store the running partial back to
    // binary16 — the precision behaviour of an FP16-wire allreduce.
    ring_allreduce<Half>(data, CommWorld::Op::AllReduceF16,
                         [](Half* mine, const Half* left, std::size_t n) {
                           for (std::size_t j = 0; j < n; ++j) {
                             mine[j] = Half(static_cast<float>(mine[j]) +
                                            static_cast<float>(left[j]));
                           }
                         });
  }

  void allreduce_max(std::span<float> data) override {
    ring_allreduce<float>(data, CommWorld::Op::AllReduceMaxF32,
                          [](float* mine, const float* left, std::size_t n) {
                            for (std::size_t j = 0; j < n; ++j) {
                              mine[j] = std::max(mine[j], left[j]);
                            }
                          });
  }

  void allgather_bytes(std::span<const std::byte> local,
                       std::span<std::byte> out) override {
    const int g = world_size();
    ZIPFLM_CHECK(out.size() == local.size() * static_cast<std::size_t>(g),
                 "allgather output must be world_size * block bytes");
    const std::size_t b = local.size();
    // Stage own block, publish the output buffer so neighbours can read.
    std::memcpy(out.data() + static_cast<std::size_t>(rank_) * b, local.data(),
                b);
    publish(CommWorld::Op::AllGather, local.data(), out.data(), b, -1);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::AllGather, b, -1);
    group_.barrier.arrive_and_wait();

    const int left = wrap(rank_ - 1, g);
    const std::byte* left_out =
        group_.slots[static_cast<std::size_t>(left)].dst;
    for (int s = 0; s + 1 < g; ++s) {
      const int blk = wrap(rank_ - 1 - s, g);
      std::memcpy(out.data() + static_cast<std::size_t>(blk) * b,
                  left_out + static_cast<std::size_t>(blk) * b, b);
      group_.barrier.arrive_and_wait();
    }

    auto& led = ledger();
    ++led.allgather_calls;
    led.bytes_sent += static_cast<std::uint64_t>(g - 1) * b;
    led.bytes_received += static_cast<std::uint64_t>(g - 1) * b;
    led.max_collective_scratch_bytes = std::max<std::uint64_t>(
        led.max_collective_scratch_bytes, out.size());
    led.simulated_comm_seconds +=
        w_.cost_.ring_allgather_seconds(group_.topo, b);
  }

  void allgatherv_bytes(std::span<const std::byte> local,
                        std::vector<std::byte>& out,
                        std::vector<std::size_t>& counts) override {
    const int g = world_size();
    // Phase 1: exchange block sizes (a small fixed-size allgather; the
    // ledger accounts it as 8 bytes per rank on the wire).
    publish(CommWorld::Op::AllGatherV, local.data(), nullptr, local.size(),
            -1);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::AllGatherV, kIgnoreBytes, -1);
    counts.resize(static_cast<std::size_t>(g));
    std::vector<std::size_t> offsets(static_cast<std::size_t>(g) + 1, 0);
    for (int r = 0; r < g; ++r) {
      counts[static_cast<std::size_t>(r)] =
          group_.slots[static_cast<std::size_t>(r)].bytes;
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] +
          counts[static_cast<std::size_t>(r)];
    }
    out.assign(offsets.back(), std::byte{});
    if (!local.empty()) {
      std::memcpy(out.data() + offsets[static_cast<std::size_t>(rank_)],
                  local.data(), local.size());
    }
    // Phase 2: publish the (resized) output buffer, then ring-forward.
    group_.slots[static_cast<std::size_t>(rank_)].dst = out.data();
    group_.barrier.arrive_and_wait();

    const int left = wrap(rank_ - 1, g);
    const std::byte* left_out =
        group_.slots[static_cast<std::size_t>(left)].dst;
    std::uint64_t moved = 0;
    std::size_t max_block = 0;
    for (int s = 0; s + 1 < g; ++s) {
      const int blk = wrap(rank_ - 1 - s, g);
      const std::size_t sz = counts[static_cast<std::size_t>(blk)];
      if (sz != 0) {
        std::memcpy(out.data() + offsets[static_cast<std::size_t>(blk)],
                    left_out + offsets[static_cast<std::size_t>(blk)], sz);
      }
      moved += sz;
      max_block = std::max(max_block, sz);
      group_.barrier.arrive_and_wait();
    }

    auto& led = ledger();
    ++led.allgather_calls;
    led.bytes_sent +=
        moved + static_cast<std::uint64_t>(g - 1) * sizeof(std::size_t);
    led.bytes_received +=
        moved + static_cast<std::uint64_t>(g - 1) * sizeof(std::size_t);
    led.max_collective_scratch_bytes = std::max<std::uint64_t>(
        led.max_collective_scratch_bytes, out.size());
    led.simulated_comm_seconds +=
        w_.cost_.ring_allgather_seconds(group_.topo, sizeof(std::size_t)) +
        static_cast<double>(g - 1) *
            w_.cost_.ring_step_seconds(group_.topo, max_block);
  }

  void broadcast_bytes(std::span<std::byte> data, int root) override {
    const int g = world_size();
    ZIPFLM_CHECK(root >= 0 && root < g, "broadcast root out of range");
    publish(CommWorld::Op::Broadcast, data.data(), data.data(), data.size(),
            root);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(CommWorld::Op::Broadcast, data.size(), root);
    group_.barrier.arrive_and_wait();
    if (rank_ != root && !data.empty()) {
      std::memcpy(data.data(),
                  group_.slots[static_cast<std::size_t>(root)].dst,
                  data.size());
    }
    group_.barrier.arrive_and_wait();

    auto& led = ledger();
    ++led.broadcast_calls;
    // Pipelined-ring accounting: every rank except the pipeline tail
    // forwards the payload once.
    if (rank_ != wrap(root - 1, g)) led.bytes_sent += data.size();
    if (rank_ != root) led.bytes_received += data.size();
    led.simulated_comm_seconds +=
        w_.cost_.broadcast_seconds(group_.topo, data.size());
  }

 private:
  // allgatherv blocks legitimately differ in size across ranks.
  static constexpr std::size_t kIgnoreBytes = static_cast<std::size_t>(-1);

  void publish(CommWorld::Op op, const std::byte* src, std::byte* dst,
               std::size_t bytes, int root) {
    auto& slot = group_.slots[static_cast<std::size_t>(rank_)];
    slot.op = op;
    slot.src = src;
    slot.dst = dst;
    slot.bytes = bytes;
    slot.root = root;
  }

  /// Reduce steps hand the reducer a whole contiguous chunk:
  /// reduce(mine, left, count) must combine left's partial into mine.
  template <typename T, typename Red>
  void ring_allreduce(std::span<T> data, CommWorld::Op op, Red reduce) {
    const int g = world_size();
    publish(op, reinterpret_cast<const std::byte*>(data.data()),
            reinterpret_cast<std::byte*>(data.data()),
            data.size() * sizeof(T), -1);
    group_.barrier.arrive_and_wait();
    group_.validate_uniform(op, data.size() * sizeof(T), -1);
    group_.barrier.arrive_and_wait();

    auto& led = ledger();
    ++led.allreduce_calls;
    if (g > 1 && !data.empty()) {
      const int left = wrap(rank_ - 1, g);
      T* left_data = reinterpret_cast<T*>(
          group_.slots[static_cast<std::size_t>(left)].dst);
      const std::size_t n = data.size();
      std::uint64_t moved_elems = 0;

      // Phase 1: reduce-scatter.  Step s: accumulate the left
      // neighbour's partial of chunk (rank - s - 1) into ours.
      for (int s = 0; s + 1 < g; ++s) {
        const int c = wrap(rank_ - s - 1, g);
        const auto r = chunk_range(n, g, c);
        if (r.size() != 0) {
          reduce(data.data() + r.begin, left_data + r.begin, r.size());
        }
        // We simultaneously "sent" chunk (rank - s) to the right.
        moved_elems += chunk_range(n, g, wrap(rank_ - s, g)).size();
        group_.barrier.arrive_and_wait();
      }
      // Phase 2: allgather of completed chunks.  Step s: copy chunk
      // (rank - s) from the left neighbour.
      for (int s = 0; s + 1 < g; ++s) {
        const int c = wrap(rank_ - s, g);
        const auto r = chunk_range(n, g, c);
        if (r.size() != 0) {
          std::memcpy(data.data() + r.begin, left_data + r.begin,
                      r.size() * sizeof(T));
        }
        moved_elems += chunk_range(n, g, wrap(rank_ + 1 - s, g)).size();
        group_.barrier.arrive_and_wait();
      }

      led.bytes_sent += moved_elems * sizeof(T);
      led.bytes_received += moved_elems * sizeof(T);
      led.simulated_comm_seconds +=
          w_.cost_.ring_allreduce_seconds(group_.topo,
                                          data.size() * sizeof(T));
    }
  }

  CommWorld& w_;
  CommWorld::Group& group_;
  const int rank_;
  const int global_rank_;
  std::unique_ptr<ThreadRankComm> node_;
  std::unique_ptr<ThreadRankComm> leaders_;
};

// ---------------------------------------------------------------------------
// CommWorld
// ---------------------------------------------------------------------------

CommWorld::CommWorld(int world_size, Options options)
    : world_size_(world_size),
      topo_(options.topo_set ? options.topo : Topology::for_world(world_size)),
      cost_(options.cost),
      world_group_(world_size, options.topo_set
                                   ? options.topo
                                   : Topology::for_world(world_size)),
      ledgers_(static_cast<std::size_t>(world_size)) {
  ZIPFLM_CHECK(world_size > 0, "world size must be positive");
  ZIPFLM_CHECK(topo_.world_size() == world_size,
               "topology must match world size");
  // Sub-groups: one per node (intra-node links only) and, with multiple
  // nodes, the leader set (one rank per node, fabric links only).
  node_groups_.reserve(static_cast<std::size_t>(topo_.nodes));
  for (int n = 0; n < topo_.nodes; ++n) {
    node_groups_.push_back(std::make_unique<Group>(
        topo_.gpus_per_node, Topology{1, topo_.gpus_per_node}));
  }
  if (topo_.nodes > 1) {
    leader_group_ =
        std::make_unique<Group>(topo_.nodes, Topology{topo_.nodes, 1});
  }
}

CommWorld::~CommWorld() = default;

void CommWorld::run(const std::function<void(Communicator&)>& fn) {
  world_group_.barrier.reset();
  for (auto& g : node_groups_) g->barrier.reset();
  if (leader_group_ != nullptr) leader_group_->barrier.reset();

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(world_size_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      ThreadRankComm comm(*this, world_group_, r, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        world_group_.barrier.abort();
        for (auto& g : node_groups_) g->barrier.abort();
        if (leader_group_ != nullptr) leader_group_->barrier.abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Prefer the originating error over BarrierAborted victims.
  std::exception_ptr any;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!any) any = e;
    try {
      std::rethrow_exception(e);
    } catch (const BarrierAborted&) {
      // victim; keep looking for the root cause
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (any) std::rethrow_exception(any);
}

const TrafficLedger& CommWorld::ledger(int rank) const {
  ZIPFLM_CHECK(rank >= 0 && rank < world_size_, "ledger rank out of range");
  return ledgers_[static_cast<std::size_t>(rank)];
}

TrafficLedger CommWorld::total_ledger() const {
  TrafficLedger total;
  for (const auto& l : ledgers_) total += l;
  return total;
}

double CommWorld::max_simulated_comm_seconds() const {
  double mx = 0.0;
  for (const auto& l : ledgers_) {
    mx = std::max(mx, l.simulated_comm_seconds);
  }
  return mx;
}

void CommWorld::reset_ledgers() {
  for (auto& l : ledgers_) l.reset();
}

}  // namespace zipflm
