#include "zipflm/comm/wire_codec.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "comm_internal.hpp"
#include "zipflm/support/error.hpp"
#include "zipflm/tensor/pack.hpp"
#include "zipflm/tensor/simd.hpp"

namespace zipflm {
namespace {

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

inline std::uint64_t zigzag(Index v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline Index unzigzag(std::uint64_t z) noexcept {
  return static_cast<Index>((z >> 1) ^ (~(z & 1) + 1));
}

inline void put_uvarint(std::uint64_t v, std::vector<std::byte>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

inline std::uint64_t get_uvarint(std::span<const std::byte> in,
                                 std::size_t& pos) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    ZIPFLM_CHECK(pos < in.size(), "wire codec: truncated varint");
    const auto b = static_cast<std::uint8_t>(in[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw Error("wire codec: varint longer than 64 bits");
}

// ---------------------------------------------------------------------------
// Byte planes
// ---------------------------------------------------------------------------

// One plane is [u8 mode][payload]: mode 0 = n raw bytes, mode 1 = RLE
// pairs (u8 run 1..255, u8 value) until n bytes are produced.  The
// encoder picks whichever is smaller, so a plane never expands by more
// than its mode byte.

std::size_t rle_size(const std::byte* p, std::size_t n) {
  std::size_t size = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && p[i + run] == p[i] && run < 255) ++run;
    size += 2;
    i += run;
  }
  return size;
}

void encode_plane(const std::byte* p, std::size_t n,
                  std::vector<std::byte>& out) {
  if (n > 0 && rle_size(p, n) < n) {
    out.push_back(std::byte{1});
    std::size_t i = 0;
    while (i < n) {
      std::size_t run = 1;
      while (i + run < n && p[i + run] == p[i] && run < 255) ++run;
      out.push_back(static_cast<std::byte>(run));
      out.push_back(p[i]);
      i += run;
    }
  } else {
    out.push_back(std::byte{0});
    out.insert(out.end(), p, p + n);
  }
}

void decode_plane(std::span<const std::byte> in, std::size_t& pos,
                  std::byte* p, std::size_t n) {
  ZIPFLM_CHECK(pos < in.size(), "wire codec: truncated plane header");
  const auto mode = static_cast<std::uint8_t>(in[pos++]);
  if (mode == 0) {
    ZIPFLM_CHECK(pos + n <= in.size(), "wire codec: truncated raw plane");
    if (n > 0) {
      std::memcpy(p, in.data() + pos, n);
    }
    pos += n;
    return;
  }
  ZIPFLM_CHECK(mode == 1, "wire codec: unknown plane mode");
  std::size_t produced = 0;
  while (produced < n) {
    ZIPFLM_CHECK(pos + 2 <= in.size(), "wire codec: truncated RLE plane");
    const auto run = static_cast<std::size_t>(
        static_cast<std::uint8_t>(in[pos]));
    const std::byte value = in[pos + 1];
    pos += 2;
    ZIPFLM_CHECK(run >= 1 && produced + run <= n,
                 "wire codec: RLE run overflows plane");
    std::memset(p + produced, static_cast<int>(value), run);
    produced += run;
  }
}

// ---------------------------------------------------------------------------
// Packed gradient codec: [u8 width][width planes]
// ---------------------------------------------------------------------------

// Scratch reused across hops.  Collectives run one per rank thread, so
// thread_local keeps the hot path allocation-free after warmup.
std::vector<std::byte>& plane_scratch() {
  thread_local std::vector<std::byte> s;
  return s;
}

std::vector<float>& float_scratch() {
  thread_local std::vector<float> s;
  return s;
}

template <typename T>
void encode_packed(std::span<const T> data, std::vector<std::byte>& out) {
  constexpr std::size_t w = sizeof(T);
  const std::size_t n = data.size();
  auto& planes = plane_scratch();
  planes.resize(n * w);
  simd::byteplane_split(reinterpret_cast<const std::byte*>(data.data()), n, w,
                        planes.data());
  out.clear();
  out.reserve(1 + w + n * w);
  out.push_back(static_cast<std::byte>(w));
  for (std::size_t p = 0; p < w; ++p) {
    encode_plane(planes.data() + p * n, n, out);
  }
}

template <typename T>
void decode_packed(std::span<const std::byte> in, std::span<T> out) {
  constexpr std::size_t w = sizeof(T);
  const std::size_t n = out.size();
  ZIPFLM_CHECK(!in.empty() &&
                   static_cast<std::size_t>(
                       static_cast<std::uint8_t>(in[0])) == w,
               "wire codec: packed width mismatch");
  auto& planes = plane_scratch();
  planes.resize(n * w);
  std::size_t pos = 1;
  for (std::size_t p = 0; p < w; ++p) {
    decode_plane(in, pos, planes.data() + p * n, n);
  }
  ZIPFLM_CHECK(pos == in.size(), "wire codec: trailing bytes after planes");
  simd::byteplane_merge(planes.data(), n, w,
                        reinterpret_cast<std::byte*>(out.data()));
}

// ---------------------------------------------------------------------------
// INT8 gradient codec: [f32 scale][n int8 quants]
// ---------------------------------------------------------------------------

// Conversions stay scalar on purpose: the codec runs inside a
// collective (possibly on a comm thread), where fanning out to the
// ThreadPool would deadlock overlap and break per-rank determinism.
bool all_finite(std::span<const float> data) {
  for (const float v : data) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool stage_floats(std::span<const Half> data, std::vector<float>& out) {
  out.resize(data.size());
  bool finite = true;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Half h = data[i];
    if (h.is_nan() || h.is_inf()) finite = false;
    out[i] = static_cast<float>(h);
  }
  return finite;
}

void encode_int8_from_floats(std::span<const float> data, bool finite,
                             std::vector<std::byte>& out) {
  const std::size_t n = data.size();
  out.resize(4 + n);
  float scale = 0.0f;
  if (!finite) {
    scale = std::numeric_limits<float>::quiet_NaN();
  } else if (n > 0) {
    scale = simd::max_abs(data.data(), n) / 127.0f;
  }
  std::memcpy(out.data(), &scale, 4);
  if (!finite || scale == 0.0f) {
    std::memset(out.data() + 4, 0, n);
  } else {
    simd::int8_quantize(data.data(), n, scale,
                        reinterpret_cast<std::int8_t*>(out.data() + 4));
  }
}

float int8_scale(std::span<const std::byte> in, std::size_t n) {
  ZIPFLM_CHECK(in.size() == 4 + n, "wire codec: int8 payload size mismatch");
  float scale = 0.0f;
  std::memcpy(&scale, in.data(), 4);
  return scale;
}

void decode_int8(std::span<const std::byte> in, std::span<float> out) {
  const float scale = int8_scale(in, out.size());
  // q * NaN = NaN and q * 0 = 0, so the degenerate scales need no
  // special casing on decode.
  simd::int8_dequantize(reinterpret_cast<const std::int8_t*>(in.data() + 4),
                        out.size(), scale, out.data());
}

void decode_int8(std::span<const std::byte> in, std::span<Half> out) {
  const float scale = int8_scale(in, out.size());
  auto& tmp = float_scratch();
  tmp.resize(out.size());
  simd::int8_dequantize(reinterpret_cast<const std::int8_t*>(in.data() + 4),
                        out.size(), scale, tmp.data());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = Half(tmp[i]);
}

}  // namespace

const char* wire_codec_name(WireCodec codec) noexcept {
  switch (codec) {
    case WireCodec::None:
      return "none";
    case WireCodec::Packed:
      return "packed";
    case WireCodec::Int8:
      return "int8";
  }
  return "unknown";
}

void encode_index_block(std::span<const Index> ids,
                        std::vector<std::byte>& out) {
  out.clear();
  out.reserve(ids.size() + ids.size() / 4);
  // Deltas are taken modulo 2^64: two's-complement wraparound keeps the
  // bytes identical to a signed subtraction wherever that is defined,
  // and stays well-defined when consecutive ids span the int64 range.
  std::uint64_t prev = 0;
  for (const Index id : ids) {
    const std::uint64_t u = static_cast<std::uint64_t>(id);
    put_uvarint(zigzag(static_cast<Index>(u - prev)), out);
    prev = u;
  }
}

void decode_index_block(std::span<const std::byte> in,
                        std::vector<Index>& out) {
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  while (pos < in.size()) {
    prev += static_cast<std::uint64_t>(unzigzag(get_uvarint(in, pos)));
    out.push_back(static_cast<Index>(prev));
  }
}

void encode_grad_chunk(WireCodec codec, std::span<const float> data,
                       std::vector<std::byte>& out) {
  switch (codec) {
    case WireCodec::Packed:
      encode_packed(data, out);
      return;
    case WireCodec::Int8:
      encode_int8_from_floats(data, all_finite(data), out);
      return;
    case WireCodec::None:
      break;
  }
  throw Error("wire codec: cannot encode with codec None");
}

void encode_grad_chunk(WireCodec codec, std::span<const Half> data,
                       std::vector<std::byte>& out) {
  switch (codec) {
    case WireCodec::Packed:
      encode_packed(data, out);
      return;
    case WireCodec::Int8: {
      auto& tmp = float_scratch();
      const bool finite = stage_floats(data, tmp);
      encode_int8_from_floats(std::span<const float>(tmp), finite, out);
      return;
    }
    case WireCodec::None:
      break;
  }
  throw Error("wire codec: cannot encode with codec None");
}

void decode_grad_chunk(WireCodec codec, std::span<const std::byte> in,
                       std::span<float> out) {
  switch (codec) {
    case WireCodec::Packed:
      decode_packed(in, out);
      return;
    case WireCodec::Int8:
      decode_int8(in, out);
      return;
    case WireCodec::None:
      break;
  }
  throw Error("wire codec: cannot decode with codec None");
}

void decode_grad_chunk(WireCodec codec, std::span<const std::byte> in,
                       std::span<Half> out) {
  switch (codec) {
    case WireCodec::Packed:
      decode_packed(in, out);
      return;
    case WireCodec::Int8:
      decode_int8(in, out);
      return;
    case WireCodec::None:
      break;
  }
  throw Error("wire codec: cannot decode with codec None");
}

void record_codec_traffic(TrafficLedger& ledger, CodecSlot slot,
                          std::uint64_t logical_bytes,
                          std::uint64_t wire_bytes) {
  auto& c = ledger.codec_slot(slot);
  c.logical_bytes += logical_bytes;
  c.wire_bytes += wire_bytes;
  auto& m = comm_internal::CommMetrics::get();
  m.codec_logical_bytes.add(logical_bytes);
  m.codec_wire_bytes.add(wire_bytes);
  if (wire_bytes > 0) {
    m.compression_ratio.set(static_cast<double>(logical_bytes) /
                            static_cast<double>(wire_bytes));
  }
}

}  // namespace zipflm
