// Per-rank accounting of everything a collective did: bytes on the wire,
// scratch memory, call counts, per-collective peak payloads, and
// simulated transfer time under the active cost model.  This ledger is
// the measurement instrument behind the paper's communication-volume
// and memory claims.
//
// The same numbers are mirrored, summed over ranks, into the global
// zipflm::obs::MetricsRegistry under "comm/..." (see thread_comm.cpp),
// so the unified metrics snapshot reports them without the caller
// holding a CommWorld.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace zipflm {

/// One accounting slot per wire codec (see comm/wire_codec.hpp).  The
/// index slot covers the varint+delta id allgatherv; Packed/Int8 cover
/// the gradient-hop codecs.
enum class CodecSlot : std::uint8_t { IndexVarint = 0, Packed = 1, Int8 = 2 };
inline constexpr std::size_t kCodecSlotCount = 3;
const char* codec_slot_name(CodecSlot slot) noexcept;

/// Logical-vs-wire volume through one codec, as observed by this rank:
/// logical is what the payload would have occupied uncoded (at its
/// staged element width), wire is the encoded bytes that replaced it
/// (size prefixes included).  For allgatherv the gathered totals are
/// booked; for allreduce the bytes this rank sent.
struct CodecTraffic {
  std::uint64_t logical_bytes = 0;
  std::uint64_t wire_bytes = 0;

  /// Achieved compression: logical / wire (0 when nothing was coded).
  double ratio() const noexcept {
    return wire_bytes == 0 ? 0.0
                           : static_cast<double>(logical_bytes) /
                                 static_cast<double>(wire_bytes);
  }
};

struct TrafficLedger {
  std::uint64_t bytes_sent = 0;      ///< payload this rank pushed to a peer
  std::uint64_t bytes_received = 0;  ///< payload this rank pulled from a peer
  std::uint64_t allreduce_calls = 0;
  std::uint64_t allgather_calls = 0;
  std::uint64_t alltoall_calls = 0;
  std::uint64_t broadcast_calls = 0;
  std::uint64_t barrier_calls = 0;
  /// Largest receive/scratch buffer any single collective required on
  /// this rank (the quantity that OOMs the baseline in Tables III/IV).
  std::uint64_t max_collective_scratch_bytes = 0;
  /// Largest single-call payload per collective family — the knob that
  /// decides chunking/fusion thresholds when optimizing collectives.
  std::uint64_t max_allreduce_payload_bytes = 0;
  std::uint64_t max_allgather_payload_bytes = 0;
  std::uint64_t max_alltoall_payload_bytes = 0;
  std::uint64_t max_broadcast_payload_bytes = 0;
  /// Simulated communication seconds under the active CostModel.
  double simulated_comm_seconds = 0.0;
  /// Bytes that actually crossed a transport (framing included) and
  /// wall-clock seconds measured inside collectives.  Zero under the
  /// shared-memory backend — these are the *measured* counterparts of
  /// bytes_sent/bytes_received/simulated_comm_seconds, kept separate so
  /// modelled and real time are never conflated.
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t wire_bytes_received = 0;
  double real_comm_seconds = 0.0;
  /// Per-codec logical-vs-wire volume, indexed by CodecSlot.  Unlike
  /// wire_bytes_sent these are also maintained under the shared-memory
  /// backend (modelled from the encoded sizes the transport ring would
  /// have moved), so codec benchmarks report bytes-on-wire everywhere.
  std::array<CodecTraffic, kCodecSlotCount> codec{};

  CodecTraffic& codec_slot(CodecSlot s) {
    return codec[static_cast<std::size_t>(s)];
  }
  const CodecTraffic& codec_slot(CodecSlot s) const {
    return codec[static_cast<std::size_t>(s)];
  }

  void reset() { *this = TrafficLedger{}; }

  /// One JSON object with every field, keys matching the member names.
  std::string to_json() const;

  TrafficLedger& operator+=(const TrafficLedger& o) {
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    allreduce_calls += o.allreduce_calls;
    allgather_calls += o.allgather_calls;
    alltoall_calls += o.alltoall_calls;
    broadcast_calls += o.broadcast_calls;
    barrier_calls += o.barrier_calls;
    if (o.max_collective_scratch_bytes > max_collective_scratch_bytes) {
      max_collective_scratch_bytes = o.max_collective_scratch_bytes;
    }
    if (o.max_allreduce_payload_bytes > max_allreduce_payload_bytes) {
      max_allreduce_payload_bytes = o.max_allreduce_payload_bytes;
    }
    if (o.max_allgather_payload_bytes > max_allgather_payload_bytes) {
      max_allgather_payload_bytes = o.max_allgather_payload_bytes;
    }
    if (o.max_alltoall_payload_bytes > max_alltoall_payload_bytes) {
      max_alltoall_payload_bytes = o.max_alltoall_payload_bytes;
    }
    if (o.max_broadcast_payload_bytes > max_broadcast_payload_bytes) {
      max_broadcast_payload_bytes = o.max_broadcast_payload_bytes;
    }
    simulated_comm_seconds += o.simulated_comm_seconds;
    wire_bytes_sent += o.wire_bytes_sent;
    wire_bytes_received += o.wire_bytes_received;
    real_comm_seconds += o.real_comm_seconds;
    for (std::size_t i = 0; i < kCodecSlotCount; ++i) {
      codec[i].logical_bytes += o.codec[i].logical_bytes;
      codec[i].wire_bytes += o.codec[i].wire_bytes;
    }
    return *this;
  }
};

}  // namespace zipflm
