// Rank-facing collective interface.
//
// Mirrors the subset of MPI the paper's training loop needs: barrier,
// ALLREDUCE (sum / max, FP32 and FP16), ALLGATHER (fixed and variable
// block size), broadcast.  Every collective updates the calling rank's
// TrafficLedger with exact wire bytes, scratch size, and simulated
// transfer time under the world's CostModel.
//
// Collectives must be invoked by every rank of the world in the same
// order with consistent arguments; the implementation validates this and
// throws CollectiveMismatchError symmetrically on all ranks.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "zipflm/comm/ledger.hpp"
#include "zipflm/comm/topology.hpp"
#include "zipflm/comm/wire_codec.hpp"
#include "zipflm/support/error.hpp"
#include "zipflm/tensor/half.hpp"

namespace zipflm {

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const noexcept = 0;
  virtual int world_size() const noexcept = 0;
  virtual const Topology& topology() const noexcept = 0;

  virtual void barrier() = 0;

  /// In-place sum-allreduce over FP32 (ring reduce-scatter + allgather).
  virtual void allreduce_sum(std::span<float> data) = 0;
  /// FP16 wire allreduce: per-hop accumulation in FP32, stored back to
  /// binary16 after each hop (NCCL half-precision semantics).
  virtual void allreduce_sum(std::span<Half> data) = 0;
  /// In-place elementwise max-allreduce (loss-scaler overflow voting).
  virtual void allreduce_max(std::span<float> data) = 0;

  /// Gather an equal-sized byte block from every rank; out must hold
  /// world_size() * local.size() bytes, laid out by rank.
  virtual void allgather_bytes(std::span<const std::byte> local,
                               std::span<std::byte> out) = 0;

  /// Gather variably-sized blocks.  counts[r] receives the byte size of
  /// rank r's block; out is resized to the concatenation by rank.
  virtual void allgatherv_bytes(std::span<const std::byte> local,
                                std::vector<std::byte>& out,
                                std::vector<std::size_t>& counts) = 0;

  /// Personalized all-to-all over variably-sized byte blocks.
  /// send is the concatenation, by destination rank, of the blocks this
  /// rank ships; send_counts[d] is the byte size of the block bound for
  /// rank d (send_counts.size() == world_size(), the self block is
  /// copied locally).  On return recv_counts[s] holds the byte size of
  /// the block rank s addressed to this rank and out is their
  /// concatenation by source rank.  Like every collective it must be
  /// invoked by all ranks in the same step; per-rank counts may differ
  /// freely (the sharded-embedding pull/push exchange is the client).
  virtual void alltoallv_bytes(std::span<const std::byte> send,
                               std::span<const std::size_t> send_counts,
                               std::vector<std::byte>& out,
                               std::vector<std::size_t>& recv_counts) = 0;

  virtual void broadcast_bytes(std::span<std::byte> data, int root) = 0;

  virtual TrafficLedger& ledger() noexcept = 0;

  /// Arms a gradient wire codec for subsequent allreduce_sum calls on
  /// THIS communicator (sub-communicators keep their own arming; both
  /// default to None, so hierarchical legs stay raw unless armed
  /// explicitly).  allreduce_max and the byte collectives ignore it.
  /// The codec is negotiated per collective — ranks arming different
  /// codecs fault with CollectiveMismatchError.  Prefer WireCodecScope
  /// over calling this directly.
  virtual void set_wire_codec(WireCodec codec) noexcept = 0;
  virtual WireCodec wire_codec() const noexcept = 0;

  /// Achieved compression ratio (encoded / logical bytes, in (0, 1+])
  /// of the final reduced chunks of the most recent coded allreduce, or
  /// 0 when none ran.  Computed from globally-consistent data, so every
  /// rank observes the same value — safe to feed lockstep decisions.
  virtual double last_codec_ratio() const noexcept { return 0.0; }

  /// Sub-communicator spanning the ranks of this rank's node, or nullptr
  /// when the implementation does not support sub-groups.  Rank order
  /// within the group follows global rank order; this rank participates.
  virtual Communicator* node_comm() noexcept { return nullptr; }

  /// Sub-communicator spanning the first rank of every node, or nullptr
  /// if this rank is not a node leader (or there is only one node).
  /// Collectives on it must be invoked by all leaders (and only them).
  virtual Communicator* leader_comm() noexcept { return nullptr; }

  // ---- Typed convenience wrappers -------------------------------------

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void allgather(std::span<const T> local, std::vector<T>& out) {
    out.resize(local.size() * static_cast<std::size_t>(world_size()));
    allgather_bytes(std::as_bytes(local),
                    std::as_writable_bytes(std::span<T>(out)));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void allgatherv(std::span<const T> local, std::vector<T>& out,
                  std::vector<std::size_t>* element_counts = nullptr) {
    std::vector<std::byte> raw;
    std::vector<std::size_t> byte_counts;
    allgatherv_bytes(std::as_bytes(local), raw, byte_counts);
    ZIPFLM_ASSERT(raw.size() % sizeof(T) == 0,
                  "allgatherv payload not a whole number of elements");
    out.resize(raw.size() / sizeof(T));
    if (!raw.empty()) {
      std::memcpy(out.data(), raw.data(), raw.size());
    }
    if (element_counts != nullptr) {
      element_counts->resize(byte_counts.size());
      for (std::size_t r = 0; r < byte_counts.size(); ++r) {
        (*element_counts)[r] = byte_counts[r] / sizeof(T);
      }
    }
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void broadcast(std::span<T> data, int root) {
    broadcast_bytes(std::as_writable_bytes(data), root);
  }

  /// Element-typed alltoallv: counts are element counts per peer.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void alltoallv(std::span<const T> send,
                 std::span<const std::size_t> send_counts, std::vector<T>& out,
                 std::vector<std::size_t>& recv_counts) {
    std::vector<std::size_t> send_bytes(send_counts.size());
    for (std::size_t d = 0; d < send_counts.size(); ++d) {
      send_bytes[d] = send_counts[d] * sizeof(T);
    }
    std::vector<std::byte> raw;
    std::vector<std::size_t> recv_bytes;
    alltoallv_bytes(std::as_bytes(send), send_bytes, raw, recv_bytes);
    ZIPFLM_ASSERT(raw.size() % sizeof(T) == 0,
                  "alltoallv payload not a whole number of elements");
    out.resize(raw.size() / sizeof(T));
    if (!raw.empty()) {
      // An empty world-wide exchange (every count zero) leaves both
      // buffers null — memcpy's nonnull contract forbids that call.
      std::memcpy(out.data(), raw.data(), raw.size());
    }
    recv_counts.resize(recv_bytes.size());
    for (std::size_t s = 0; s < recv_bytes.size(); ++s) {
      ZIPFLM_ASSERT(recv_bytes[s] % sizeof(T) == 0,
                    "alltoallv peer block not a whole number of elements");
      recv_counts[s] = recv_bytes[s] / sizeof(T);
    }
  }
};

/// RAII arming of a gradient wire codec; restores the previous codec on
/// scope exit so nested/legacy callers always see the state they set.
class WireCodecScope {
 public:
  WireCodecScope(Communicator& comm, WireCodec codec) noexcept
      : comm_(comm), prev_(comm.wire_codec()) {
    comm_.set_wire_codec(codec);
  }
  ~WireCodecScope() { comm_.set_wire_codec(prev_); }

  WireCodecScope(const WireCodecScope&) = delete;
  WireCodecScope& operator=(const WireCodecScope&) = delete;

 private:
  Communicator& comm_;
  WireCodec prev_;
};

}  // namespace zipflm
