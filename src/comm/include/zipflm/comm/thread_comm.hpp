// In-process multi-rank runtime: one OS thread per simulated GPU rank,
// collectives executed step-for-step as ring algorithms over shared
// memory.
//
// This is the substitution for the paper's 50-node MPI cluster.  The
// collectives move real data through the real ring schedule (so byte
// accounting, chunking and reduction order are faithful), while the
// CostModel converts the per-step transfer sizes into simulated seconds
// on the paper's interconnects.
//
// Besides the world communicator, every rank can obtain MPI-style
// sub-communicators (Communicator::node_comm / leader_comm) spanning its
// node and the set of node leaders — the building blocks of hierarchical
// collectives (see hierarchical.hpp).
//
// Fault tolerance: a FaultPlan injects rank failures at a chosen
// collective call — Kill (the rank silently stops participating, like a
// crashed process), Delay (a straggler), or Corrupt (the rank's payload
// is poisoned on the wire).  With a collective timeout configured, a
// killed rank surfaces as CollectiveTimeoutError on every survivor
// instead of a deadlock, the dead rank is retired from the world, and
// the next run() proceeds over the survivors only.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "zipflm/comm/communicator.hpp"
#include "zipflm/comm/cost_model.hpp"
#include "zipflm/support/barrier.hpp"

namespace zipflm {

class ThreadRankComm;

enum class FaultKind : std::uint8_t {
  Kill,     ///< rank stops participating (no abort, no exception escapes)
  Delay,    ///< rank sleeps delay_seconds before the collective
  Corrupt,  ///< rank's contribution is overwritten with NaN bytes
};

/// One injected fault: fires when `rank` enters its `at_collective`-th
/// collective call (0-based, counted per rank across the world's whole
/// lifetime), then disarms.
struct FaultEvent {
  int rank = -1;
  FaultKind kind = FaultKind::Kill;
  std::uint64_t at_collective = 0;
  double delay_seconds = 0.0;  ///< Delay only
};

struct FaultPlan {
  std::vector<FaultEvent> events;
};

/// Internal signal thrown inside a killed rank's collective.  Not
/// derived from zipflm::Error on purpose: user code catching Error must
/// not be able to swallow a simulated process death.
struct SimulatedRankDeath {
  int rank = -1;
};

/// Which engine carries CommWorld's collectives.
enum class CommBackend : std::uint8_t {
  /// Shared-memory rings synchronized by cyclic barriers (the original
  /// engine): deterministic, no kernel involvement.
  SharedMem,
  /// zipflm::net message-passing rings over in-memory channels — the
  /// transport code path with the deterministic in-process oracle
  /// underneath.
  InProcNet,
  /// The same message-passing rings over real socketpair fds: every
  /// collective byte crosses the kernel with genuine backpressure and
  /// partial transfers.  Results are bitwise identical to SharedMem.
  Socket,
};

class CommWorld {
 public:
  struct Options {
    Topology topo;        ///< defaults to one 8-GPU node sized to world
    CostModel cost;       ///< defaults to the paper's Titan X cluster
    bool topo_set = false;
    /// Maximum wall time one collective crossing may take before the
    /// survivors throw CollectiveTimeoutError.  0 = wait forever (the
    /// pre-fault-tolerance behaviour).
    double collective_timeout_seconds = 0.0;
    CommBackend backend = CommBackend::SharedMem;
    Options() : cost(CostModel::titan_x_cluster()) {}
  };

  explicit CommWorld(int world_size, Options options = Options());
  ~CommWorld();

  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  /// Live (non-retired) rank count — the size every collective runs at.
  int world_size() const noexcept { return static_cast<int>(live_.size()); }
  /// Rank count the world was built with, dead ranks included.
  int total_ranks() const noexcept { return world_size_; }
  /// Global ids of the live ranks, ascending.  run() executes fn once
  /// per entry; Communicator::rank() is the dense index into this list.
  const std::vector<int>& live_ranks() const noexcept { return live_; }
  /// Global ids of ranks retired by Kill faults, in death order.
  const std::vector<int>& failed_ranks() const noexcept { return failed_; }

  const Topology& topology() const noexcept { return topo_; }
  const CostModel& cost_model() const noexcept { return cost_; }
  CommBackend backend() const noexcept { return backend_; }

  /// Arm (replacing any previous plan) the given fault schedule.  Only
  /// call between run() invocations.
  void inject_faults(FaultPlan plan);
  /// (Re)configure the collective timeout; 0 disables.  Only call
  /// between run() invocations.
  void set_collective_timeout(double seconds);
  double collective_timeout() const noexcept { return timeout_seconds_; }

  /// Execute fn(comm) concurrently on every live rank and join.  If any
  /// rank throws, all barriers abort (no deadlock) and the lowest-rank
  /// exception is rethrown here.  A rank killed by a FaultPlan is
  /// retired before this returns: the survivors' CollectiveTimeoutError
  /// is rethrown, and the next run() spans the remaining ranks only.
  void run(const std::function<void(Communicator&)>& fn);

  /// Per-rank traffic accounting for the most recent / cumulative runs.
  const TrafficLedger& ledger(int rank) const;
  TrafficLedger total_ledger() const;
  /// Maximum over ranks of simulated communication seconds — the
  /// critical-path figure the performance model consumes.
  double max_simulated_comm_seconds() const;
  void reset_ledgers();

 private:
  friend class ThreadRankComm;

  enum class Op : std::uint8_t {
    None,
    Barrier,
    AllReduceF32,
    AllReduceF16,
    AllReduceMaxF32,
    AllGather,
    AllGatherV,
    AllToAllV,
    Broadcast,
  };

  // One collective "slot" per member, re-published at each collective.
  struct alignas(64) Slot {
    Op op = Op::None;
    const std::byte* src = nullptr;
    std::byte* dst = nullptr;
    std::size_t bytes = 0;
    int root = -1;
    WireCodec codec = WireCodec::None;
  };

  /// Shared state of one communicator scope (the world, one node, or the
  /// node-leader set): a barrier and a slot per member, plus the
  /// topology the cost model prices its ring steps against.
  struct Group {
    Group(int size, Topology t)
        : barrier(size), slots(static_cast<std::size_t>(size)), topo(t) {}
    CyclicBarrier barrier;
    std::vector<Slot> slots;
    Topology topo;

    void validate_uniform(Op op, std::size_t bytes, int root,
                          WireCodec codec) const;
    int size() const noexcept { return static_cast<int>(slots.size()); }
  };

  /// What a rank must do on entering its next collective.
  struct FaultAction {
    FaultKind kind;
    double delay_seconds;
    bool armed = false;
  };

  /// Advance `global_rank`'s collective counter and return the fault (if
  /// any) scheduled for this call.  Called only from that rank's thread.
  FaultAction next_fault(int global_rank);

  /// run() body for the InProcNet / Socket backends: builds a fresh
  /// per-run transport mesh over the live ranks (poisoned streams from
  /// a failed run are discarded wholesale) and drives fn through
  /// TransportComm endpoints instead of the shared-memory groups.
  void run_transport(const std::function<void(Communicator&)>& fn);

  /// Shared run() epilogue: retire died ranks, rebuild groups, and
  /// rethrow preferring an originating error over victims —
  /// BarrierAborted always, CollectiveTimeoutError too when
  /// `transport_victims` (a closed peer surfaces as a timeout there).
  void finish_run(std::vector<int>& died,
                  std::vector<std::exception_ptr>& errors,
                  bool transport_victims);

  /// Rebuild the world/node/leader groups over the live ranks.  After
  /// any retirement the survivors are densely renumbered into a flat
  /// single-node topology (the degraded schedule makes no locality
  /// promises), matching how NCCL re-forms a communicator after a rank
  /// loss.
  void rebuild_groups();

  const int world_size_;
  Topology topo_;
  CostModel cost_;
  CommBackend backend_ = CommBackend::SharedMem;
  double timeout_seconds_ = 0.0;
  std::unique_ptr<Group> world_group_;
  std::vector<std::unique_ptr<Group>> node_groups_;  ///< one per node
  std::unique_ptr<Group> leader_group_;  ///< node leaders (nodes > 1)
  std::vector<TrafficLedger> ledgers_;
  std::vector<int> live_;    ///< global ids, ascending
  std::vector<int> failed_;  ///< retired ranks, in death order
  FaultPlan plan_;
  /// One byte per plan_.events entry; only the event's own rank thread
  /// touches its flag during run() (next_fault filters on rank first).
  std::vector<std::uint8_t> plan_consumed_;
  std::vector<std::uint64_t> fault_cursor_;  ///< per-rank collective count
};

}  // namespace zipflm
