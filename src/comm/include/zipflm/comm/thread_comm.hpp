// In-process multi-rank runtime: one OS thread per simulated GPU rank,
// collectives executed step-for-step as ring algorithms over shared
// memory.
//
// This is the substitution for the paper's 50-node MPI cluster.  The
// collectives move real data through the real ring schedule (so byte
// accounting, chunking and reduction order are faithful), while the
// CostModel converts the per-step transfer sizes into simulated seconds
// on the paper's interconnects.
//
// Besides the world communicator, every rank can obtain MPI-style
// sub-communicators (Communicator::node_comm / leader_comm) spanning its
// node and the set of node leaders — the building blocks of hierarchical
// collectives (see hierarchical.hpp).
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "zipflm/comm/communicator.hpp"
#include "zipflm/comm/cost_model.hpp"
#include "zipflm/support/barrier.hpp"

namespace zipflm {

class ThreadRankComm;

class CommWorld {
 public:
  struct Options {
    Topology topo;        ///< defaults to one 8-GPU node sized to world
    CostModel cost;       ///< defaults to the paper's Titan X cluster
    bool topo_set = false;
    Options() : cost(CostModel::titan_x_cluster()) {}
  };

  explicit CommWorld(int world_size, Options options = Options());
  ~CommWorld();

  CommWorld(const CommWorld&) = delete;
  CommWorld& operator=(const CommWorld&) = delete;

  int world_size() const noexcept { return world_size_; }
  const Topology& topology() const noexcept { return topo_; }
  const CostModel& cost_model() const noexcept { return cost_; }

  /// Execute fn(comm) concurrently on every rank and join.  If any rank
  /// throws, all barriers abort (no deadlock) and the lowest-rank
  /// exception is rethrown here.
  void run(const std::function<void(Communicator&)>& fn);

  /// Per-rank traffic accounting for the most recent / cumulative runs.
  const TrafficLedger& ledger(int rank) const;
  TrafficLedger total_ledger() const;
  /// Maximum over ranks of simulated communication seconds — the
  /// critical-path figure the performance model consumes.
  double max_simulated_comm_seconds() const;
  void reset_ledgers();

 private:
  friend class ThreadRankComm;

  enum class Op : std::uint8_t {
    None,
    Barrier,
    AllReduceF32,
    AllReduceF16,
    AllReduceMaxF32,
    AllGather,
    AllGatherV,
    Broadcast,
  };

  // One collective "slot" per member, re-published at each collective.
  struct alignas(64) Slot {
    Op op = Op::None;
    const std::byte* src = nullptr;
    std::byte* dst = nullptr;
    std::size_t bytes = 0;
    int root = -1;
  };

  /// Shared state of one communicator scope (the world, one node, or the
  /// node-leader set): a barrier and a slot per member, plus the
  /// topology the cost model prices its ring steps against.
  struct Group {
    Group(int size, Topology t) : barrier(size), slots(static_cast<std::size_t>(size)), topo(t) {}
    CyclicBarrier barrier;
    std::vector<Slot> slots;
    Topology topo;

    void validate_uniform(Op op, std::size_t bytes, int root) const;
    int size() const noexcept { return static_cast<int>(slots.size()); }
  };

  const int world_size_;
  Topology topo_;
  CostModel cost_;
  Group world_group_;
  std::vector<std::unique_ptr<Group>> node_groups_;  ///< one per node
  std::unique_ptr<Group> leader_group_;  ///< node leaders (nodes > 1)
  std::vector<TrafficLedger> ledgers_;
};

}  // namespace zipflm
