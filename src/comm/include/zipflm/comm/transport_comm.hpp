// Communicator implemented as message-passing rings over a
// zipflm::net::Transport — the engine behind CommWorld's InProcNet /
// Socket backends and the multi-process ProcessGroup.
//
// The contract that makes backends interchangeable: every collective
// runs the SAME chunk schedule and the SAME accumulation order as the
// shared-memory engine in thread_comm.cpp (reduce-scatter step s
// accumulates the left neighbour's partial of chunk wrap(rank-s-1) as
// `mine += left`), so losses and weights are bitwise identical across
// thread, in-proc-net, and socket worlds.  The TrafficLedger payload
// accounting and obs span/metric instrumentation use the identical
// formulas too; what the transport adds on top is *measured* telemetry
// — wire_bytes_* (framing included) and real_comm_seconds — kept apart
// from the CostModel's simulated figures.
//
// Every collective opens with a 24-byte header exchange between ring
// neighbours carrying {op, payload bytes, root, sequence number}: the
// world-size handshake's per-collective sibling.  A disagreeing header
// is a CollectiveMismatchError; a peer that vanished mid-collective
// (EOF, ECONNRESET, transport timeout) surfaces as
// CollectiveTimeoutError, feeding the same rank-retire / world-rebuild
// path the shared-memory barriers use.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "zipflm/comm/communicator.hpp"
#include "zipflm/comm/cost_model.hpp"
#include "zipflm/comm/thread_comm.hpp"
#include "zipflm/net/transport.hpp"

namespace zipflm {

/// What a rank must do on entering its next collective — the transport
/// engine's view of CommWorld's private FaultAction.
struct TransportFault {
  FaultKind kind = FaultKind::Kill;
  double delay_seconds = 0.0;
  bool armed = false;
};

class TransportComm final : public Communicator {
 public:
  struct Hooks {
    TrafficLedger* ledger = nullptr;  ///< required: payload accounting sink
    const CostModel* cost = nullptr;  ///< required: simulated-seconds pricing
    /// Optional fault hook, polled at the head of every collective
    /// (CommWorld wires its FaultPlan through this).
    std::function<TransportFault()> fault;
    /// Id used for the SimulatedRankDeath signal and trace lanes; equals
    /// rank() except in a degraded world with retired ranks.
    int global_rank = 0;
  };

  /// The transport must outlive the communicator and is driven
  /// exclusively by this communicator's thread.
  TransportComm(net::Transport& transport, Topology topo, Hooks hooks);

  int rank() const noexcept override { return transport_.rank(); }
  int world_size() const noexcept override { return transport_.world_size(); }
  const Topology& topology() const noexcept override { return topo_; }
  TrafficLedger& ledger() noexcept override { return *hooks_.ledger; }

  void barrier() override;
  void allreduce_sum(std::span<float> data) override;
  void allreduce_sum(std::span<Half> data) override;
  void allreduce_max(std::span<float> data) override;
  void allgather_bytes(std::span<const std::byte> local,
                       std::span<std::byte> out) override;
  void allgatherv_bytes(std::span<const std::byte> local,
                        std::vector<std::byte>& out,
                        std::vector<std::size_t>& counts) override;
  void alltoallv_bytes(std::span<const std::byte> send,
                       std::span<const std::size_t> send_counts,
                       std::vector<std::byte>& out,
                       std::vector<std::size_t>& recv_counts) override;
  void broadcast_bytes(std::span<std::byte> data, int root) override;

  void set_wire_codec(WireCodec codec) noexcept override { codec_ = codec; }
  WireCodec wire_codec() const noexcept override { return codec_; }
  double last_codec_ratio() const noexcept override {
    return last_codec_ratio_;
  }

 private:
  enum class CollOp : std::uint8_t {
    Barrier = 1,
    AllReduceF32,
    AllReduceF16,
    AllReduceMaxF32,
    AllGather,
    AllGatherV,
    AllToAllV,
    Broadcast,
  };

  /// Per-collective frame exchanged between ring neighbours before any
  /// payload byte moves.  pad[0] carries the negotiated WireCodec id
  /// (None for every collective family except coded sum-allreduces);
  /// ranks arming different codecs fail the handshake loudly instead of
  /// decoding each other's payload as garbage.
  struct WireHeader {
    std::uint32_t magic = 0;
    std::uint8_t op = 0;
    std::uint8_t pad[3] = {};
    std::int32_t root = -1;
    std::uint32_t seq = 0;
    std::uint64_t coll_bytes = 0;
  };
  static_assert(sizeof(WireHeader) == 24);

  // allgatherv blocks legitimately differ in size across ranks.
  static constexpr std::uint64_t kIgnoreBytes = ~std::uint64_t{0};

  /// Snapshot of transport stats + wall clock at collective entry; the
  /// destructor books the deltas into the ledger's wire_bytes_* /
  /// real_comm_seconds and the comm/net_* metrics.
  class WireScope {
   public:
    explicit WireScope(TransportComm& comm);
    ~WireScope();

   private:
    TransportComm& comm_;
    net::NetStats before_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Fault hook at the head of every collective — same semantics as the
  /// shared-memory engine: Kill throws SimulatedRankDeath, Delay
  /// sleeps, Corrupt poisons the rank's own contribution with 0xFF
  /// bytes (deferred via pending_corrupt_ when no buffer exists yet).
  void enter_collective(std::byte* buf, std::size_t bytes);

  /// Exchange WireHeaders with the ring neighbours and validate the
  /// left neighbour agrees on (op, bytes, root, seq, codec).  Advances
  /// seq_.
  void neighbor_handshake(CollOp op, std::uint64_t bytes, int root,
                          WireCodec codec = WireCodec::None);

  void validate_header(const WireHeader& got, CollOp op, std::uint64_t bytes,
                       int root, WireCodec codec) const;

  WireHeader make_header(CollOp op, std::uint64_t bytes, int root,
                         WireCodec codec) const;

  /// Translate the in-flight net::TransportError into the collective
  /// failure taxonomy (CollectiveTimeoutError / CollectiveMismatchError).
  [[noreturn]] void rethrow_as_collective(const char* coll);

  template <typename T, typename Red>
  void ring_allreduce(std::span<T> data, CollOp op, const char* op_name,
                      Red reduce, WireCodec codec);

  /// Coded ring body: hops move encoded chunks behind u32 size
  /// prefixes; phase 2 forwards the owner's encoding verbatim so every
  /// rank decodes identical bytes.  Returns the summed encoded size of
  /// the final chunks (globally consistent — the ratio feed).
  template <typename T, typename Red>
  std::uint64_t ring_allreduce_coded(std::span<T> data, Red reduce,
                                     WireCodec codec,
                                     std::uint64_t& moved_elems,
                                     std::uint64_t& enc_wire);

  net::Transport& transport_;
  Topology topo_;
  Hooks hooks_;
  std::uint32_t seq_ = 0;  ///< collective counter, validated peer-to-peer
  WireCodec codec_ = WireCodec::None;
  double last_codec_ratio_ = 0.0;
  bool pending_corrupt_ = false;
};

}  // namespace zipflm
