// One rank of a multi-process collective world.
//
// Where CommWorld spawns every rank as a thread of one process, a
// ProcessGroup is held by ONE OS process that joined an N-process world
// through the socket rendezvous (see net/socket.hpp).  It owns the
// rendezvous'd endpoint, this rank's TrafficLedger, and a TransportComm
// over them — the identical collective engine CommWorld's Socket
// backend uses, so an N-process run produces bitwise the same results
// as an N-thread run.
//
// Typical use, under the zipflm_launch rank-runner:
//
//   auto pg = zipflm::ProcessGroup::connect_from_env();
//   pg->comm().allreduce_sum(grads);
#pragma once

#include <memory>
#include <string>

#include "zipflm/comm/transport_comm.hpp"
#include "zipflm/net/socket.hpp"

namespace zipflm {

class ProcessGroup {
 public:
  struct Options {
    CostModel cost;  ///< prices simulated_comm_seconds, as in CommWorld
    /// 0 = wait forever; otherwise a stalled collective throws
    /// CollectiveTimeoutError after this many seconds.
    double collective_timeout_seconds = 0.0;
    double rendezvous_timeout_seconds = 30.0;
    Options() : cost(CostModel::titan_x_cluster()) {}
  };

  /// Join the world at `address` ("unix:<prefix>" or "tcp:<host>:<port>")
  /// as rank `rank` of `world_size`.  Blocks until all pairwise
  /// connections are handshaken.
  static std::unique_ptr<ProcessGroup> connect(const std::string& address,
                                               int rank, int world_size,
                                               Options options = Options());

  /// connect() with rank / world / address from the environment set by
  /// zipflm_launch (ZIPFLM_NET_RANK, ZIPFLM_NET_WORLD,
  /// ZIPFLM_NET_RENDEZVOUS).
  static std::unique_ptr<ProcessGroup> connect_from_env(
      Options options = Options());

  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  Communicator& comm() noexcept { return *comm_; }
  int rank() const noexcept { return transport_->rank(); }
  int world_size() const noexcept { return transport_->world_size(); }
  const TrafficLedger& ledger() const noexcept { return ledger_; }
  net::Transport& transport() noexcept { return *transport_; }

 private:
  ProcessGroup(std::unique_ptr<net::Transport> transport, Options options);

  Options options_;
  std::unique_ptr<net::Transport> transport_;
  TrafficLedger ledger_;
  std::unique_ptr<TransportComm> comm_;
};

}  // namespace zipflm
