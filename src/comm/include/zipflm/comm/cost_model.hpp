// Alpha-beta interconnect cost model for collectives.
//
// Simulated wall-clock time for a collective is computed from the exact
// number of ring steps and the exact bytes each step moves — the same
// quantities our in-process collectives execute — under per-link
// latency (alpha, seconds) and bandwidth (beta, bytes/second) parameters.
// The bottleneck link of a ring that crosses node boundaries is the
// inter-node fabric, matching how hierarchical rings behave in practice.
#pragma once

#include <cstddef>
#include <cstdint>

#include "zipflm/comm/topology.hpp"

namespace zipflm {

struct LinkParams {
  double alpha_s = 0.0;    ///< per-message latency, seconds
  double beta_Bps = 1.0;   ///< effective bandwidth, bytes per second

  double transfer_seconds(std::size_t bytes) const {
    return alpha_s + static_cast<double>(bytes) / beta_Bps;
  }
};

/// Throughput of one wire codec's conversion kernels, measured on the
/// payload's *logical* bytes (bench_exchange_micro reports both legs;
/// the defaults below are calibrated from its scalar figures, so the
/// selector never under-prices the codec on SIMD-less builds).
struct CodecCost {
  double encode_Bps = 1.0;  ///< logical bytes encoded per second
  double decode_Bps = 1.0;  ///< logical bytes decoded per second

  double convert_seconds(std::size_t logical_bytes) const {
    return static_cast<double>(logical_bytes) / encode_Bps +
           static_cast<double>(logical_bytes) / decode_Bps;
  }
};

struct CostModel {
  LinkParams intra_node;  ///< PCIe (paper: 32 GB/s bidirectional)
  LinkParams inter_node;  ///< IB FDR (paper: 15 GB/s bidirectional)

  /// Paper's Table II testbed.  Effective per-direction bandwidths are
  /// half the quoted bidirectional figures, derated by a protocol
  /// efficiency factor (documented in EXPERIMENTS.md calibration notes).
  static CostModel titan_x_cluster();

  /// Puri et al. [21] style V100 + NVLink node (Section V-D comparison).
  static CostModel v100_nvlink_cluster();

  const LinkParams& bottleneck(const Topology& topo) const {
    return topo.ring_crosses_nodes() ? inter_node : intra_node;
  }

  /// Time for one ring step where every rank forwards `bytes` to its
  /// neighbour simultaneously (all links busy; bottleneck link dominates).
  double ring_step_seconds(const Topology& topo, std::size_t bytes) const {
    return bottleneck(topo).transfer_seconds(bytes);
  }

  /// Closed forms used by the performance model (zipflm::sim) and checked
  /// against the step-by-step accounting of the executing collectives.
  double ring_allreduce_seconds(const Topology& topo,
                                std::size_t buffer_bytes) const;
  double ring_allgather_seconds(const Topology& topo,
                                std::size_t bytes_per_rank) const;
  double broadcast_seconds(const Topology& topo, std::size_t bytes) const;

  // -- Strategy-selection query API -----------------------------------
  // Per-collective predictions the per-step exchange strategy selector
  // (core/strategy_select.hpp) composes into whole-strategy costs.

  /// allgatherv modeled at its critical block size: every ring step
  /// forwards one rank's block, the largest block paces the ring.
  double ring_allgatherv_seconds(const Topology& topo,
                                 std::size_t max_block_bytes) const {
    return ring_allgather_seconds(topo, max_block_bytes);
  }

  /// Two-level node/leader allreduce (comm/hierarchical.hpp): an
  /// intra-node ring reduce, an inter-node ring over the node leaders,
  /// then an intra-node broadcast of the result.
  double hierarchical_allreduce_seconds(const Topology& topo,
                                        std::size_t buffer_bytes) const;
};

}  // namespace zipflm
