// Hierarchical (two-level) allreduce built from sub-communicators —
// the topology-aware alternative to a flat ring that production
// frameworks (NCCL, Horovod) use on multi-node clusters:
//
//   1. intra-node ring allreduce        (fast PCIe/NVLink links)
//   2. inter-node ring allreduce among
//      the node leaders only            (one stream per node on the NIC)
//   3. intra-node broadcast from the
//      leader                           (fast links again)
//
// The flat ring pays 2(G-1) fabric-latency steps and bounds every step
// by the slowest link; the hierarchy pays only 2(N-1) fabric steps for N
// nodes and keeps the bulk of the traffic on intra-node links.  The
// ablation benchmark (bench_ablation_hierarchical) quantifies the
// difference under the paper's cost model; the functional implementation
// here is exercised by tests against the flat result.
#pragma once

#include <span>

#include "zipflm/comm/communicator.hpp"

namespace zipflm {

/// In-place sum-allreduce using the node/leader hierarchy when the
/// communicator provides it; falls back to the flat ring otherwise.
void hierarchical_allreduce_sum(Communicator& comm, std::span<float> data);
void hierarchical_allreduce_sum(Communicator& comm, std::span<Half> data);

}  // namespace zipflm
