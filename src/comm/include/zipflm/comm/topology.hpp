// Cluster shape: N nodes x M GPUs per node.
//
// Matches the paper's testbed (Table II): 50 nodes, 8 GTX Titan X per
// node, PCIe within a node, FDR InfiniBand between nodes.  Ranks are
// numbered node-major: rank r lives on node r / gpus_per_node.
#pragma once

#include "zipflm/support/error.hpp"

namespace zipflm {

struct Topology {
  int nodes = 1;
  int gpus_per_node = 8;

  int world_size() const noexcept { return nodes * gpus_per_node; }

  int node_of(int rank) const {
    ZIPFLM_ASSERT(rank >= 0 && rank < world_size(), "rank out of range");
    return rank / gpus_per_node;
  }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Does a ring over all ranks cross node boundaries?
  bool ring_crosses_nodes() const noexcept { return nodes > 1; }

  /// Topology for a given total GPU count on the paper's 8-GPU nodes:
  /// fills nodes one at a time (so 6 GPUs = 1 node, 24 GPUs = 3 nodes).
  static Topology for_world(int world, int gpus_per_node = 8) {
    ZIPFLM_CHECK(world > 0 && gpus_per_node > 0,
                 "world and gpus_per_node must be positive");
    if (world <= gpus_per_node) return Topology{1, world};
    ZIPFLM_CHECK(world % gpus_per_node == 0,
                 "multi-node worlds must fill whole nodes");
    return Topology{world / gpus_per_node, gpus_per_node};
  }
};

}  // namespace zipflm
