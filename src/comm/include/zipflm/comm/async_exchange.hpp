// Asynchronous collective execution: one comm thread per rank that
// drains submitted collective jobs in FIFO order, so the simulated wire
// works while the rank's main thread is still inside backprop.
//
// Correctness contract (what keeps overlap bitwise-deterministic):
//
//  * FIFO per rank.  Jobs execute one at a time, in submission order.
//    Every rank must submit the same job sequence — the submission
//    points live in deterministic single-threaded code (backward-
//    completion hooks), so the cross-rank collective order stays
//    uniform without any coordination, exactly as validate_uniform
//    demands.
//  * The main thread never enters a collective while jobs are pending:
//    callers flush() before touching the communicator (or any buffer a
//    job writes) themselves.  The queue mutex then provides the
//    happens-before edge that makes the single-threaded CommWorld state
//    (fault cursors, ledgers) safe to hand between the two threads —
//    at any instant, at most one thread per rank is inside the
//    communicator.
//  * `overlap = false` runs every job inline at submit().  Identical
//    jobs, identical order, same math — a run with overlap off is
//    byte-for-byte the run with overlap on, minus the extra thread.
//
// Exceptions thrown by a job (collective timeouts, simulated rank
// death, wire validation) are captured on the comm thread, abort the
// remaining queue, and rethrow from flush() on the submitting thread —
// so the existing fault-tolerance paths (run_epoch_resilient,
// CommWorld's rank retirement) see them exactly where the synchronous
// code would have thrown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "zipflm/comm/communicator.hpp"

namespace zipflm {

class AsyncCommEngine {
 public:
  /// Totals since construction / reset_stats().  busy vs flush-wait is
  /// what the overlap-efficiency gauge is made of: comm work that the
  /// main thread did NOT sit waiting for was successfully hidden.
  struct Stats {
    std::uint64_t jobs = 0;
    std::uint64_t payload_bytes = 0;     ///< as declared at submit()
    double busy_seconds = 0.0;           ///< comm-thread time inside jobs
    double flush_wait_seconds = 0.0;     ///< main-thread time blocked in flush
  };

  /// The engine keeps a reference to `comm`; it must outlive the engine
  /// (stack order inside a CommWorld::run lambda gives this for free).
  /// When the host has a single hardware thread, overlap degrades to
  /// inline execution (no spare core to hide comm on — the worker would
  /// only time-slice against compute); `force_thread` overrides that
  /// for tests that exercise the threaded path itself.
  explicit AsyncCommEngine(Communicator& comm, bool overlap = true,
                           bool force_thread = false);
  ~AsyncCommEngine();

  AsyncCommEngine(const AsyncCommEngine&) = delete;
  AsyncCommEngine& operator=(const AsyncCommEngine&) = delete;

  bool overlap() const noexcept { return overlap_; }

  /// Enqueue one collective job.  `label` must be a string literal (it
  /// is stored by pointer for the trace span).  `payload_bytes` is
  /// bookkeeping only — the bytes the job moves, for spans and stats.
  /// With overlap off the job runs inline, right here.
  void submit(const char* label, std::size_t payload_bytes,
              std::function<void(Communicator&)> job);

  /// Block until every submitted job has completed, then rethrow the
  /// first captured job exception, if any.  Callers must flush before
  /// running their own collectives or reading job-written buffers.
  void flush();

  /// Snapshot (call when quiescent, i.e. after flush()).
  Stats stats() const;
  void reset_stats();

  /// 1.0 = the main thread never waited on comm; 0.0 = every comm
  /// second was sat out in flush().  Zero busy time reports 0.
  static double overlap_efficiency(const Stats& s) {
    if (s.busy_seconds <= 0.0) return 0.0;
    const double hidden = s.busy_seconds - s.flush_wait_seconds;
    return hidden <= 0.0 ? 0.0 : hidden / s.busy_seconds;
  }

 private:
  struct Job {
    const char* label;
    std::size_t payload_bytes;
    std::function<void(Communicator&)> fn;
  };

  void worker_loop();
  void run_job(const Job& job);

  Communicator& comm_;
  const bool overlap_;

  mutable std::mutex mu_;
  std::condition_variable cv_;          ///< worker wakeup (queue / stop)
  std::condition_variable idle_cv_;     ///< flush wakeup (drained)
  std::deque<Job> queue_;
  bool running_job_ = false;
  bool stop_ = false;
  std::exception_ptr error_;            ///< first failure; queue aborted
  Stats stats_;
  std::thread worker_;                  ///< started lazily, only if overlap
};

}  // namespace zipflm
