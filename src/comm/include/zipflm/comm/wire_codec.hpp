#pragma once

// Wire codecs for collective payloads.
//
// The paper stops compression-scaling at FP16; the Zipfian repetition
// it observes in the index traffic (and the low entropy of gradient
// exponent bytes) makes collective payloads compressible well past
// that.  Two payload families get codecs:
//
//  * Index blocks (the sorted unique-id allgatherv): delta + zigzag +
//    LEB128 varint.  Lossless, order-preserving, rank-deterministic.
//
//  * Gradient chunks (one ring-allreduce hop): either lossless
//    byte-plane packing — element bytes are transposed into per-byte
//    planes so the near-constant exponent/zero planes become long runs,
//    then each plane independently picks the smaller of {raw, RLE} —
//    or lossy INT8 quantization with one FP32 scale per chunk
//    (scale = max|x| / 127, round-to-nearest-even).
//
// Determinism rules (see DESIGN.md):
//  * every encoder is a pure function of the input bytes — identical
//    chunks encode to identical bytes on every rank, every backend,
//    and every SIMD dispatch (the pack/quantize kernels are bitwise
//    identical to their scalar fallbacks);
//  * Packed and the index codec are bit-exact round trips, including
//    NaN payloads and subnormals;
//  * INT8 is lossy but deterministic: decode(encode(x)) depends only
//    on x.  A chunk containing any non-finite value encodes as
//    scale = NaN with zero quants and decodes to all-NaN, preserving
//    the lockstep overflow-skip behaviour of fault-injected runs.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "zipflm/comm/ledger.hpp"
#include "zipflm/tensor/half.hpp"
#include "zipflm/tensor/tensor.hpp"

namespace zipflm {

/// Gradient wire codec applied per ring-allreduce hop.  Negotiated per
/// collective: the shared-memory engine publishes it in the rendezvous
/// slot, the transport engine in the wire header — mismatched ranks
/// fault loudly instead of decoding garbage.
enum class WireCodec : std::uint8_t {
  None = 0,    ///< raw element bytes (FP32 or FP16 as staged)
  Packed = 1,  ///< lossless byte-plane + per-plane best-of {raw, RLE}
  Int8 = 2,    ///< lossy INT8 with per-chunk FP32 scale
};

const char* wire_codec_name(WireCodec codec) noexcept;

// ---------------------------------------------------------------------------
// Index codec
// ---------------------------------------------------------------------------

/// Encodes an id block as zigzag(delta) LEB128 varints (delta against
/// the previous id, starting from 0).  Sorted Zipf-repeated ids yield
/// mostly 1-byte deltas; arbitrary (unsorted, duplicate, extreme)
/// blocks still round-trip exactly.  `out` is replaced.
void encode_index_block(std::span<const Index> ids,
                        std::vector<std::byte>& out);

/// Decodes one encoded block, appending the ids to `out`.  Throws
/// Error on truncated or malformed input.
void decode_index_block(std::span<const std::byte> in,
                        std::vector<Index>& out);

// ---------------------------------------------------------------------------
// Gradient chunk codec
// ---------------------------------------------------------------------------

/// Encodes one gradient chunk with `codec` (must not be None).  `out`
/// is replaced; the encoding is a pure function of the input bytes.
void encode_grad_chunk(WireCodec codec, std::span<const float> data,
                       std::vector<std::byte>& out);
void encode_grad_chunk(WireCodec codec, std::span<const Half> data,
                       std::vector<std::byte>& out);

/// Decodes one encoded chunk into `out` (whose size fixes the element
/// count).  Packed restores the input bit-exactly; Int8 yields
/// q * scale (Half: rounded to nearest even).  Throws Error when the
/// encoded bytes do not match `out.size()` elements.
void decode_grad_chunk(WireCodec codec, std::span<const std::byte> in,
                       std::span<float> out);
void decode_grad_chunk(WireCodec codec, std::span<const std::byte> in,
                       std::span<Half> out);

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

/// Books one coded payload into the per-codec ledger slot and mirrors
/// it into the global obs counters, updating the
/// "comm/compression_ratio" gauge (logical / wire of this payload).
void record_codec_traffic(TrafficLedger& ledger, CodecSlot slot,
                          std::uint64_t logical_bytes,
                          std::uint64_t wire_bytes);

}  // namespace zipflm
