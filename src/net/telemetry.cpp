#include "zipflm/net/telemetry.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>

#include "zipflm/obs/trace.hpp"
#include "zipflm/support/error.hpp"

namespace zipflm::net::telemetry {
namespace {

/// Append-only little-endian writer with patchable length slots (the
/// chunk splitter counts sections/events as it packs them).
class Writer {
 public:
  explicit Writer(FrameType type) { u8(static_cast<std::uint8_t>(type)); }

  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  std::size_t reserve_u64() {
    const std::size_t at = bytes_.size();
    u64(0);
    return at;
  }
  void patch_u64(std::size_t at, std::uint64_t v) {
    std::memcpy(bytes_.data() + at, &v, sizeof(v));
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  std::vector<std::byte> bytes_;
};

/// Strict reader: every underrun, oversized count, or leftover byte is
/// a protocol error.
class Reader {
 public:
  Reader(const std::vector<std::byte>& bytes, FrameType expected)
      : bytes_(bytes) {
    const auto got = static_cast<FrameType>(u8());
    if (got != expected) {
      throw ProtocolError("telemetry frame type mismatch: expected " +
                          std::to_string(static_cast<int>(expected)) +
                          ", got " + std::to_string(static_cast<int>(got)));
    }
  }

  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > remaining()) {
      throw ProtocolError("telemetry string length " + std::to_string(n) +
                          " exceeds the frame");
    }
    std::string s(static_cast<std::size_t>(n), '\0');
    raw(s.data(), s.size());
    return s;
  }

  /// Guard a count whose elements each occupy at least
  /// `min_element_bytes` of what is left in the frame.
  std::uint64_t count(std::size_t min_element_bytes) {
    const std::uint64_t n = u64();
    if (min_element_bytes > 0 && n > remaining() / min_element_bytes) {
      throw ProtocolError("telemetry count " + std::to_string(n) +
                          " is implausible for the frame size");
    }
    return n;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - cursor_; }

  void finish() const {
    if (cursor_ != bytes_.size()) {
      throw ProtocolError("telemetry frame carries " +
                          std::to_string(bytes_.size() - cursor_) +
                          " trailing bytes");
    }
  }

 private:
  void raw(void* out, std::size_t size) {
    if (remaining() < size) {
      throw ProtocolError("telemetry frame truncated: wanted " +
                          std::to_string(size) + " bytes, " +
                          std::to_string(remaining()) + " left");
    }
    std::memcpy(out, bytes_.data() + cursor_, size);
    cursor_ += size;
  }

  const std::vector<std::byte>& bytes_;
  std::size_t cursor_ = 0;
};

// Smallest possible encodings, used to bound decoded counts.
constexpr std::size_t kMinEventBytes =
    8 /*name len*/ + 1 /*arg mask*/ + 8 /*start*/ + 8 /*dur*/ + 1 /*instant*/;
constexpr std::size_t kMinLaneBytes =
    8 /*label len*/ + 8 /*sort_key*/ + 8 /*dropped*/ + 8 /*event count*/;
constexpr std::size_t kMinMetricBytes = 8 /*name len*/ + 8 /*value*/;

void write_event(Writer& w, const obs::OwnedTraceEvent& ev) {
  w.str(ev.name);
  std::uint8_t mask = 0;
  for (std::size_t i = 0; i < obs::TraceEvent::kMaxArgs; ++i) {
    if (!ev.arg_name[i].empty()) mask |= static_cast<std::uint8_t>(1u << i);
  }
  w.u8(mask);
  for (std::size_t i = 0; i < obs::TraceEvent::kMaxArgs; ++i) {
    if (ev.arg_name[i].empty()) continue;
    w.str(ev.arg_name[i]);
    w.f64(ev.arg[i]);
  }
  w.u64(ev.start_ns);
  w.u64(ev.dur_ns);
  w.u8(ev.instant ? 1 : 0);
}

obs::OwnedTraceEvent read_event(Reader& r) {
  obs::OwnedTraceEvent ev;
  ev.name = r.str();
  const std::uint8_t mask = r.u8();
  if (mask >= (1u << obs::TraceEvent::kMaxArgs)) {
    throw ProtocolError("telemetry event carries unknown arg mask " +
                        std::to_string(mask));
  }
  for (std::size_t i = 0; i < obs::TraceEvent::kMaxArgs; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    ev.arg_name[i] = r.str();
    ev.arg[i] = r.f64();
  }
  ev.start_ns = r.u64();
  ev.dur_ns = r.u64();
  ev.instant = r.u8() != 0;
  return ev;
}

void write_histogram(Writer& w, const obs::HistogramSnapshot& h) {
  w.u64(h.count);
  w.f64(h.sum);
  w.f64(h.min);
  w.f64(h.max);
  w.u64(h.buckets.size());
  for (const std::uint64_t b : h.buckets) w.u64(b);
}

obs::HistogramSnapshot read_histogram(Reader& r) {
  obs::HistogramSnapshot h;
  h.count = r.u64();
  h.sum = r.f64();
  h.min = r.f64();
  h.max = r.f64();
  const std::uint64_t buckets = r.count(8);
  h.buckets.resize(static_cast<std::size_t>(buckets));
  for (auto& b : h.buckets) b = r.u64();
  return h;
}

}  // namespace

std::vector<std::byte> encode_begin(const Begin& begin) {
  Writer w(FrameType::Begin);
  w.u32(begin.probes);
  w.u8(begin.want_trace ? 1 : 0);
  w.u8(begin.want_metrics ? 1 : 0);
  return w.take();
}

Begin decode_begin(const std::vector<std::byte>& payload) {
  Reader r(payload, FrameType::Begin);
  Begin begin;
  begin.probes = r.u32();
  begin.want_trace = r.u8() != 0;
  begin.want_metrics = r.u8() != 0;
  r.finish();
  if (begin.probes == 0 || begin.probes > 4096) {
    throw ProtocolError("telemetry Begin carries implausible probe count " +
                        std::to_string(begin.probes));
  }
  return begin;
}

std::vector<std::byte> encode_clock_probe(const ClockProbe& probe) {
  Writer w(FrameType::ClockProbe);
  w.u64(probe.probe_id);
  w.u64(probe.send_ns);
  return w.take();
}

ClockProbe decode_clock_probe(const std::vector<std::byte>& payload) {
  Reader r(payload, FrameType::ClockProbe);
  ClockProbe probe;
  probe.probe_id = r.u64();
  probe.send_ns = r.u64();
  r.finish();
  return probe;
}

std::vector<std::byte> encode_clock_reply(const ClockReply& reply) {
  Writer w(FrameType::ClockReply);
  w.u64(reply.probe_id);
  w.u64(reply.recv_ns);
  w.u64(reply.send_ns);
  return w.take();
}

ClockReply decode_clock_reply(const std::vector<std::byte>& payload) {
  Reader r(payload, FrameType::ClockReply);
  ClockReply reply;
  reply.probe_id = r.u64();
  reply.recv_ns = r.u64();
  reply.send_ns = r.u64();
  r.finish();
  return reply;
}

std::vector<std::vector<std::byte>> encode_trace_chunks(
    const obs::ProcessTrace& trace, std::size_t target_bytes) {
  target_bytes = std::min(std::max<std::size_t>(target_bytes, 4096),
                          kMaxFrameBytes / 2);
  std::vector<std::vector<std::byte>> frames;

  Writer* w = nullptr;
  std::size_t lane_count_at = 0;
  std::uint64_t lanes_in_chunk = 0;
  // Writer has no default ctor on purpose; manage via optional-ish ptr.
  std::vector<Writer> storage;

  const auto open_chunk = [&] {
    storage.clear();
    storage.emplace_back(FrameType::TraceChunk);
    w = &storage.back();
    w->str(trace.label);
    lane_count_at = w->reserve_u64();
    lanes_in_chunk = 0;
  };
  const auto close_chunk = [&] {
    w->patch_u64(lane_count_at, lanes_in_chunk);
    frames.push_back(w->take());
  };

  open_chunk();
  for (const obs::LaneSnapshot& lane : trace.lanes) {
    if (lane.events.empty() && lane.dropped == 0) continue;

    // Open a section for this lane; continuation sections (after a
    // chunk split) repeat the label with dropped = 0 so the count is
    // not double-merged.
    bool first_section = true;
    std::size_t emitted = 0;
    while (true) {
      ++lanes_in_chunk;
      w->str(lane.label);
      w->i64(lane.sort_key);
      w->u64(first_section ? lane.dropped : 0);
      const std::size_t event_count_at = w->reserve_u64();
      std::uint64_t in_section = 0;
      while (emitted < lane.events.size() && w->size() < target_bytes) {
        write_event(*w, lane.events[emitted]);
        ++emitted;
        ++in_section;
      }
      w->patch_u64(event_count_at, in_section);
      if (emitted >= lane.events.size()) break;
      close_chunk();
      open_chunk();
      first_section = false;
    }
    if (w->size() >= target_bytes) {
      close_chunk();
      open_chunk();
    }
  }
  close_chunk();

  // Drop a trailing empty chunk unless it is the only one (an empty
  // trace still ships its process label).
  if (frames.size() > 1) {
    Reader probe(frames.back(), FrameType::TraceChunk);
    probe.str();
    if (probe.u64() == 0) frames.pop_back();
  }
  return frames;
}

void merge_trace_chunk(const std::vector<std::byte>& payload,
                       obs::ProcessTrace& into) {
  Reader r(payload, FrameType::TraceChunk);
  into.label = r.str();
  const std::uint64_t sections = r.count(kMinLaneBytes);
  for (std::uint64_t s = 0; s < sections; ++s) {
    const std::string label = r.str();
    const std::int64_t sort_key = r.i64();
    const std::uint64_t dropped = r.u64();
    const std::uint64_t events = r.count(kMinEventBytes);

    obs::LaneSnapshot* lane = nullptr;
    for (auto& existing : into.lanes) {
      if (existing.label == label) {
        lane = &existing;
        break;
      }
    }
    if (lane == nullptr) {
      into.lanes.emplace_back();
      lane = &into.lanes.back();
      lane->label = label;
      lane->sort_key = static_cast<int>(sort_key);
    }
    lane->dropped += dropped;
    lane->events.reserve(lane->events.size() +
                         static_cast<std::size_t>(events));
    for (std::uint64_t e = 0; e < events; ++e) {
      lane->events.push_back(read_event(r));
    }
  }
  r.finish();
}

void write_metrics_snapshot(std::vector<std::byte>& out,
                            const obs::MetricsSnapshot& snap) {
  Writer w(FrameType::MetricsChunk);  // type byte stripped below
  w.u64(snap.counters.size());
  for (const auto& [name, v] : snap.counters) {
    w.str(name);
    w.u64(v);
  }
  w.u64(snap.gauges.size());
  for (const auto& [name, v] : snap.gauges) {
    w.str(name);
    w.f64(v);
  }
  w.u64(snap.histograms.size());
  for (const auto& [name, h] : snap.histograms) {
    w.str(name);
    write_histogram(w, h);
  }
  std::vector<std::byte> bytes = w.take();
  out.insert(out.end(), bytes.begin() + 1, bytes.end());
}

obs::MetricsSnapshot read_metrics_snapshot(
    const std::vector<std::byte>& bytes, std::size_t& cursor) {
  // Reframe the remainder as a MetricsChunk body so the strict Reader
  // does the bounds work; trailing bytes after the snapshot are the
  // caller's to judge.
  std::vector<std::byte> body;
  body.reserve(1 + bytes.size() - cursor);
  body.push_back(
      static_cast<std::byte>(static_cast<std::uint8_t>(FrameType::MetricsChunk)));
  body.insert(body.end(), bytes.begin() + static_cast<std::ptrdiff_t>(cursor),
              bytes.end());

  Reader r(body, FrameType::MetricsChunk);
  obs::MetricsSnapshot snap;
  const std::uint64_t counters = r.count(kMinMetricBytes);
  for (std::uint64_t i = 0; i < counters; ++i) {
    std::string name = r.str();
    snap.counters[std::move(name)] = r.u64();
  }
  const std::uint64_t gauges = r.count(kMinMetricBytes);
  for (std::uint64_t i = 0; i < gauges; ++i) {
    std::string name = r.str();
    snap.gauges[std::move(name)] = r.f64();
  }
  const std::uint64_t histograms = r.count(kMinMetricBytes);
  for (std::uint64_t i = 0; i < histograms; ++i) {
    std::string name = r.str();
    snap.histograms[std::move(name)] = read_histogram(r);
  }
  cursor = bytes.size() - r.remaining();
  return snap;
}

std::vector<std::byte> encode_metrics_frame(const obs::MetricsSnapshot& snap) {
  std::vector<std::byte> out;
  out.push_back(
      static_cast<std::byte>(static_cast<std::uint8_t>(FrameType::MetricsChunk)));
  write_metrics_snapshot(out, snap);
  return out;
}

obs::MetricsSnapshot decode_metrics_frame(
    const std::vector<std::byte>& payload) {
  if (frame_type(payload) != FrameType::MetricsChunk) {
    throw ProtocolError("telemetry frame is not a MetricsChunk");
  }
  std::size_t cursor = 1;
  obs::MetricsSnapshot snap = read_metrics_snapshot(payload, cursor);
  if (cursor != payload.size()) {
    throw ProtocolError("telemetry MetricsChunk carries " +
                        std::to_string(payload.size() - cursor) +
                        " trailing bytes");
  }
  return snap;
}

std::vector<std::byte> encode_done() {
  return Writer(FrameType::Done).take();
}

FrameType frame_type(const std::vector<std::byte>& payload) {
  if (payload.empty()) {
    throw ProtocolError("empty telemetry frame");
  }
  const auto type = static_cast<std::uint8_t>(payload.front());
  if (type < static_cast<std::uint8_t>(FrameType::Begin) ||
      type > static_cast<std::uint8_t>(FrameType::Done)) {
    throw ProtocolError("unknown telemetry frame type " +
                        std::to_string(type));
  }
  return static_cast<FrameType>(type);
}

void send_frame(Transport& transport, int peer,
                const std::vector<std::byte>& payload) {
  ZIPFLM_CHECK(payload.size() <= kMaxFrameBytes, "telemetry frame too large");
  const std::uint64_t length = payload.size();
  auto header = transport.send(
      peer,
      std::span(reinterpret_cast<const std::byte*>(&length), sizeof(length)));
  auto body = transport.send(peer, std::span(payload.data(), payload.size()));
  header.wait();
  body.wait();
}

std::vector<std::byte> recv_frame(Transport& transport, int peer) {
  std::uint64_t length = 0;
  transport.recv_blocking(
      peer, std::span(reinterpret_cast<std::byte*>(&length), sizeof(length)));
  if (length == 0 || length > kMaxFrameBytes) {
    throw ProtocolError("telemetry frame length " + std::to_string(length) +
                        " out of range");
  }
  std::vector<std::byte> payload(static_cast<std::size_t>(length));
  transport.recv_blocking(peer, std::span(payload.data(), payload.size()));
  frame_type(payload);  // validate before handing upward
  return payload;
}

WorkerTelemetry collect_from_peer(Transport& transport, int peer,
                                  const CollectOptions& options) {
  const ClockFn clock =
      options.clock ? options.clock : ClockFn(&obs::trace_now_ns);
  WorkerTelemetry result;

  Begin begin;
  begin.probes = static_cast<std::uint32_t>(std::max(options.probes, 1));
  begin.want_trace = options.want_trace;
  begin.want_metrics = options.want_metrics;
  send_frame(transport, peer, encode_begin(begin));

  std::vector<std::int64_t> offsets;
  offsets.reserve(begin.probes);
  std::int64_t min_rtt = std::numeric_limits<std::int64_t>::max();
  for (std::uint32_t i = 0; i < begin.probes; ++i) {
    ClockProbe probe;
    probe.probe_id = i;
    probe.send_ns = clock();
    const auto t0 = static_cast<std::int64_t>(probe.send_ns);
    send_frame(transport, peer, encode_clock_probe(probe));
    const std::vector<std::byte> payload = recv_frame(transport, peer);
    const auto t3 = static_cast<std::int64_t>(clock());
    const ClockReply reply = decode_clock_reply(payload);
    if (reply.probe_id != i) {
      throw ProtocolError("telemetry clock reply answers probe " +
                          std::to_string(reply.probe_id) + ", expected " +
                          std::to_string(i));
    }
    const auto t1 = static_cast<std::int64_t>(reply.recv_ns);
    const auto t2 = static_cast<std::int64_t>(reply.send_ns);
    offsets.push_back(((t1 - t0) + (t2 - t3)) / 2);
    min_rtt = std::min(min_rtt, (t3 - t0) - (t2 - t1));
  }
  // Median of K: robust to the odd probe that ate a scheduler hiccup.
  std::sort(offsets.begin(), offsets.end());
  const std::size_t n = offsets.size();
  result.clock.offset_ns = n % 2 == 1
                               ? offsets[n / 2]
                               : (offsets[n / 2 - 1] + offsets[n / 2]) / 2;
  result.clock.min_rtt_ns = min_rtt;
  result.clock.probes = static_cast<int>(n);
  result.trace.clock_offset_ns = result.clock.offset_ns;

  bool done = false;
  while (!done) {
    const std::vector<std::byte> payload = recv_frame(transport, peer);
    switch (frame_type(payload)) {
      case FrameType::TraceChunk:
        merge_trace_chunk(payload, result.trace);
        break;
      case FrameType::MetricsChunk:
        result.metrics = decode_metrics_frame(payload);
        break;
      case FrameType::Done:
        done = true;
        break;
      default:
        throw ProtocolError("unexpected telemetry frame " +
                            std::to_string(static_cast<int>(payload[0])) +
                            " while collecting");
    }
  }
  return result;
}

void serve_collector(Transport& transport, int collector_peer, ClockFn clock) {
  if (!clock) clock = ClockFn(&obs::trace_now_ns);

  const Begin begin = decode_begin(recv_frame(transport, collector_peer));
  for (std::uint32_t i = 0; i < begin.probes; ++i) {
    const std::vector<std::byte> payload =
        recv_frame(transport, collector_peer);
    const std::uint64_t t1 = clock();  // arrival stamp before decode
    const ClockProbe probe = decode_clock_probe(payload);
    ClockReply reply;
    reply.probe_id = probe.probe_id;
    reply.recv_ns = t1;
    reply.send_ns = clock();
    send_frame(transport, collector_peer, encode_clock_reply(reply));
  }

  if (begin.want_trace) {
    obs::ProcessTrace mine;
    mine.label = obs::process_label();
    mine.lanes = obs::trace_lane_snapshot();
    for (const auto& frame : encode_trace_chunks(mine)) {
      send_frame(transport, collector_peer, frame);
    }
  }
  if (begin.want_metrics) {
    send_frame(
        transport, collector_peer,
        encode_metrics_frame(obs::MetricsRegistry::global().snapshot()));
  }
  send_frame(transport, collector_peer, encode_done());
}

}  // namespace zipflm::net::telemetry
