#include "zipflm/net/transport.hpp"

#include <chrono>

namespace zipflm::net {

void Completion::wait() {
  if (op_ == nullptr) return;
  if (!op_->done()) {
    ZIPFLM_ASSERT(transport_ != nullptr,
                  "pending completion without an owning transport");
    const auto start = std::chrono::steady_clock::now();
    transport_->progress_until(*op_);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    // The wait charge lands on whichever direction the caller blocked
    // on, even though progress services both directions meanwhile.
    auto& stats = transport_->stats_;
    (op_->is_send ? stats.send_wait_seconds : stats.recv_wait_seconds) +=
        waited;
  }
  if (op_->state == Op::State::Failed) {
    ZIPFLM_ASSERT(op_->error != nullptr, "failed op carries no error");
    std::rethrow_exception(op_->error);
  }
}

void Transport::check_peer(int peer) const {
  ZIPFLM_CHECK(peer >= 0 && peer < world_size(),
               "peer rank out of range for this world");
  ZIPFLM_CHECK(peer != rank(), "a rank cannot send to itself");
}

Completion Transport::send(int peer, std::span<const std::byte> data) {
  check_peer(peer);
  stats_.send_ops += 1;
  if (data.empty()) return Completion{};
  return Completion(this, post_send(peer, data));
}

Completion Transport::recv(int peer, std::span<std::byte> into) {
  check_peer(peer);
  stats_.recv_ops += 1;
  if (into.empty()) return Completion{};
  return Completion(this, post_recv(peer, into));
}

}  // namespace zipflm::net
