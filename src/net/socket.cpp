#include "zipflm/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>

namespace zipflm::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kHelloMagic = 0x5A4C4E31;  // "ZLN1"

struct Hello {
  std::uint32_t magic;
  std::int32_t world;
  std::int32_t rank;
};
static_assert(sizeof(Hello) == 12);

[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw TransportError(what + ": " + std::strerror(err));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ZIPFLM_ASSERT(flags >= 0, "fcntl(F_GETFL) failed");
  ZIPFLM_ASSERT(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(F_SETFL, O_NONBLOCK) failed");
}

/// Blocking exact-size write/read used only during the rendezvous
/// handshake, before the fds go nonblocking.
void write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("handshake write failed", errno);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

void read_all(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::byte*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n == 0) throw PeerClosedError("peer closed during handshake");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("handshake read failed", errno);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

// -- the poll-driven endpoint ----------------------------------------

class SocketTransport final : public Transport {
 public:
  /// Takes ownership of `fds`; fds[rank] must be -1.
  SocketTransport(std::vector<int> fds, int rank, const char* kind)
      : fds_(std::move(fds)),
        rank_(rank),
        kind_(kind),
        send_q_(fds_.size()),
        recv_q_(fds_.size()),
        send_dead_(fds_.size(), false),
        recv_dead_(fds_.size(), false) {}

  ~SocketTransport() override { close(); }

  int rank() const noexcept override { return rank_; }
  int world_size() const noexcept override {
    return static_cast<int>(fds_.size());
  }
  const char* kind() const noexcept override { return kind_; }

  void progress(double max_wait_seconds) override {
    std::vector<pollfd> pfds;
    std::vector<int> peers;
    for (int peer = 0; peer < world_size(); ++peer) {
      const auto p = static_cast<std::size_t>(peer);
      if (fds_[p] < 0) continue;
      short events = 0;
      if (!send_q_[p].empty()) events |= POLLOUT;
      if (!recv_q_[p].empty()) events |= POLLIN;
      if (events == 0) continue;
      pfds.push_back({fds_[p], events, 0});
      peers.push_back(peer);
    }
    if (pfds.empty()) return;  // nothing pending anywhere
    const int wait_ms = static_cast<int>(
        std::min(1000.0, std::max(0.0, max_wait_seconds * 1e3)));
    const int ready = ::poll(pfds.data(), pfds.size(), wait_ms);
    if (ready < 0) {
      if (errno == EINTR) return;
      throw_errno("poll failed", errno);
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const short got = pfds[i].revents;
      if (got == 0) continue;
      // POLLERR/POLLHUP: let read/write surface the exact error.
      if (got & (POLLIN | POLLERR | POLLHUP)) service_recv(peers[i]);
      if (got & (POLLOUT | POLLERR | POLLHUP)) service_send(peers[i]);
    }
  }

  void close() override {
    if (closed_) return;
    closed_ = true;
    for (int peer = 0; peer < world_size(); ++peer) {
      if (fds_[static_cast<std::size_t>(peer)] < 0) continue;
      // SHUT_RDWR makes peers see EOF even if this fd number lingers
      // in a forked child.
      ::shutdown(fds_[static_cast<std::size_t>(peer)], SHUT_RDWR);
      ::close(fds_[static_cast<std::size_t>(peer)]);
      fds_[static_cast<std::size_t>(peer)] = -1;
      fail_queue(send_q_[static_cast<std::size_t>(peer)],
                 closed_error(peer, "send"));
      fail_queue(recv_q_[static_cast<std::size_t>(peer)],
                 closed_error(peer, "recv"));
      send_dead_[static_cast<std::size_t>(peer)] = true;
      recv_dead_[static_cast<std::size_t>(peer)] = true;
    }
  }

 protected:
  std::shared_ptr<Completion::Op> post_send(
      int peer, std::span<const std::byte> data) override {
    auto op = std::make_shared<Completion::Op>();
    op->is_send = true;
    op->peer = peer;
    // post_send's contract keeps the bytes immutable until wait().
    op->data = const_cast<std::byte*>(data.data());
    op->size = data.size();
    if (closed_ || send_dead_[static_cast<std::size_t>(peer)]) {
      fail(*op, closed_error(peer, "send"));
      return op;
    }
    send_q_[static_cast<std::size_t>(peer)].push_back(op);
    service_send(peer);  // fast path: often fits the kernel buffer
    return op;
  }

  std::shared_ptr<Completion::Op> post_recv(
      int peer, std::span<std::byte> into) override {
    auto op = std::make_shared<Completion::Op>();
    op->is_send = false;
    op->peer = peer;
    op->data = into.data();
    op->size = into.size();
    if (closed_ || recv_dead_[static_cast<std::size_t>(peer)]) {
      fail(*op, closed_error(peer, "recv"));
      return op;
    }
    recv_q_[static_cast<std::size_t>(peer)].push_back(op);
    service_recv(peer);  // fast path: bytes may already be buffered
    return op;
  }

  void progress_until(Completion::Op& op) override {
    const bool bounded = timeout_seconds() > 0.0;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_seconds()));
    std::vector<pollfd> pfds;
    std::vector<int> peers;
    while (!op.done()) {
      pfds.clear();
      peers.clear();
      for (int peer = 0; peer < world_size(); ++peer) {
        const auto p = static_cast<std::size_t>(peer);
        if (fds_[p] < 0) continue;
        short events = 0;
        if (!send_q_[p].empty()) events |= POLLOUT;
        if (!recv_q_[p].empty()) events |= POLLIN;
        if (events == 0) continue;
        pfds.push_back({fds_[p], events, 0});
        peers.push_back(peer);
      }
      if (pfds.empty()) {
        // Nothing left that could complete the op: its peer died and
        // the queues were failed — wait() will observe the failure.
        ZIPFLM_ASSERT(op.done(), "progress stalled with no pollable fd");
        return;
      }
      int wait_ms = 50;  // re-check the deadline at least this often
      if (bounded) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (left.count() <= 0) {
          expire(op);
          return;
        }
        wait_ms = static_cast<int>(
            std::min<std::chrono::milliseconds::rep>(left.count() + 1, 50));
      }
      const int ready = ::poll(pfds.data(), pfds.size(), wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll failed", errno);
      }
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        const short got = pfds[i].revents;
        if (got == 0) continue;
        // POLLERR/POLLHUP: let read/write surface the exact error.
        if (got & (POLLIN | POLLERR | POLLHUP)) service_recv(peers[i]);
        if (got & (POLLOUT | POLLERR | POLLHUP)) service_send(peers[i]);
      }
    }
  }

 private:
  using OpQueue = std::deque<std::shared_ptr<Completion::Op>>;

  void service_send(int peer) {
    const auto p = static_cast<std::size_t>(peer);
    OpQueue& q = send_q_[p];
    while (!q.empty()) {
      Completion::Op& op = *q.front();
      if (op.done()) {  // timed-out op abandoned in place
        q.pop_front();
        continue;
      }
      const ssize_t n = ::send(fds_[p], op.data + op.transferred,
                               op.size - op.transferred, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) {
          // The peer is gone for writes; reads may still drain what it
          // sent before dying.
          send_dead_[p] = true;
          fail_queue(q, closed_error(peer, "send"));
          return;
        }
        throw_errno("send to rank " + std::to_string(peer) + " failed",
                    errno);
      }
      op.transferred += static_cast<std::size_t>(n);
      stats_.wire_bytes_sent += static_cast<std::uint64_t>(n);
      if (op.transferred < op.size) return;  // kernel buffer full
      op.state = Completion::Op::State::Done;
      q.pop_front();
    }
  }

  void service_recv(int peer) {
    const auto p = static_cast<std::size_t>(peer);
    OpQueue& q = recv_q_[p];
    while (!q.empty()) {
      Completion::Op& op = *q.front();
      if (op.done()) {
        q.pop_front();
        continue;
      }
      const ssize_t n = ::read(fds_[p], op.data + op.transferred,
                               op.size - op.transferred);
      if (n == 0) {
        recv_dead_[p] = true;
        send_dead_[p] = true;
        fail_queue(q, closed_error(peer, "recv"));
        fail_queue(send_q_[p], closed_error(peer, "send"));
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {
          recv_dead_[p] = true;
          send_dead_[p] = true;
          fail_queue(q, closed_error(peer, "recv"));
          fail_queue(send_q_[p], closed_error(peer, "send"));
          return;
        }
        throw_errno("recv from rank " + std::to_string(peer) + " failed",
                    errno);
      }
      op.transferred += static_cast<std::size_t>(n);
      stats_.wire_bytes_received += static_cast<std::uint64_t>(n);
      if (op.transferred < op.size) return;  // stream drained for now
      op.state = Completion::Op::State::Done;
      q.pop_front();
    }
  }

  /// Timeout on `op`: fail it and abandon it in place.  The stream's
  /// framing is lost from here on, but a transport timeout always
  /// escalates to a collective failure that tears the endpoint down.
  void expire(Completion::Op& op) {
    fail(op, std::make_exception_ptr(TransportTimeoutError(
                 std::string(op.is_send ? "send to" : "recv from") +
                 " rank " + std::to_string(op.peer) + " timed out after " +
                 std::to_string(timeout_seconds()) + "s (" +
                 std::to_string(op.transferred) + "/" +
                 std::to_string(op.size) + " bytes)")));
  }

  std::exception_ptr closed_error(int peer, const char* dir) const {
    return std::make_exception_ptr(PeerClosedError(
        std::string(dir) + (std::strcmp(dir, "send") == 0 ? " to" : " from") +
        " rank " + std::to_string(peer) + ": connection closed"));
  }

  static void fail(Completion::Op& op, std::exception_ptr error) {
    op.state = Completion::Op::State::Failed;
    op.error = std::move(error);
  }

  static void fail_queue(OpQueue& q, const std::exception_ptr& error) {
    for (const auto& op : q) {
      if (!op->done()) fail(*op, error);
    }
    q.clear();
  }

  std::vector<int> fds_;  // fds_[peer]; -1 for self and dead peers
  int rank_;
  const char* kind_;
  std::vector<OpQueue> send_q_;
  std::vector<OpQueue> recv_q_;
  std::vector<char> send_dead_;
  std::vector<char> recv_dead_;
  bool closed_ = false;
};

// -- rendezvous: listeners, dialing, hello exchange ------------------

struct ParsedAddress {
  bool is_unix = false;
  std::string path_prefix;  // unix
  std::string host;         // tcp
  int base_port = 0;        // tcp
};

ParsedAddress parse_address(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path_prefix = address.substr(5);
    ZIPFLM_CHECK(!out.path_prefix.empty(),
                 "unix rendezvous address needs a path prefix");
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const auto colon = rest.rfind(':');
    ZIPFLM_CHECK(colon != std::string::npos && colon + 1 < rest.size(),
                 "tcp rendezvous address must be tcp:<host>:<base-port>");
    out.host = rest.substr(0, colon);
    out.base_port = std::atoi(rest.c_str() + colon + 1);
    ZIPFLM_CHECK(out.base_port > 0 && out.base_port < 65536,
                 "tcp rendezvous base port out of range");
    return out;
  }
  throw ConfigError("rendezvous address must start with unix: or tcp: (got " +
                    address + ")");
}

std::string unix_path(const ParsedAddress& addr, int rank) {
  return addr.path_prefix + "." + std::to_string(rank);
}

int make_listener(const ParsedAddress& addr, int rank) {
  if (addr.is_unix) {
    const std::string path = unix_path(addr, rank);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    ZIPFLM_CHECK(path.size() < sizeof(sa.sun_path),
                 "unix rendezvous path too long: " + path);
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX) failed", errno);
    ::unlink(path.c_str());  // stale path from a crashed prior run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const int err = errno;
      ::close(fd);
      throw_errno("bind(" + path + ") failed", err);
    }
    if (::listen(fd, SOMAXCONN) != 0) {
      const int err = errno;
      ::close(fd);
      throw_errno("listen(" + path + ") failed", err);
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET) failed", errno);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_ANY);
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.base_port + rank));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    throw_errno("bind/listen on tcp port " +
                    std::to_string(addr.base_port + rank) + " failed",
                err);
  }
  return fd;
}

/// Dial peer `target`'s listener, retrying until it exists or the
/// deadline passes (peers of the same launch come up at different
/// times).
int dial(const ParsedAddress& addr, int target, Clock::time_point deadline) {
  while (true) {
    int fd = -1;
    int err = 0;
    if (addr.is_unix) {
      const std::string path = unix_path(addr, target);
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket(AF_UNIX) failed", errno);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
        return fd;
      }
      err = errno;
    } else {
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* res = nullptr;
      const std::string port = std::to_string(addr.base_port + target);
      const int rc = ::getaddrinfo(addr.host.c_str(), port.c_str(), &hints,
                                   &res);
      if (rc != 0) {
        throw TransportError("getaddrinfo(" + addr.host +
                             ") failed: " + ::gai_strerror(rc));
      }
      fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
      if (fd < 0) {
        ::freeaddrinfo(res);
        throw_errno("socket(AF_INET) failed", errno);
      }
      const int connected =
          ::connect(fd, res->ai_addr, res->ai_addrlen);
      err = errno;
      ::freeaddrinfo(res);
      if (connected == 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return fd;
      }
    }
    ::close(fd);
    if (err != ECONNREFUSED && err != ENOENT && err != ETIMEDOUT) {
      throw_errno("connect to rank " + std::to_string(target) + " failed",
                  err);
    }
    if (Clock::now() >= deadline) {
      throw TransportTimeoutError("rank " + std::to_string(target) +
                                  " never came up for rendezvous");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Accept one connection, bounded by the deadline.
int accept_one(int listen_fd, Clock::time_point deadline) {
  while (true) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      throw TransportTimeoutError("timed out waiting for peers to connect");
    }
    const int ready = ::poll(&pfd, 1, static_cast<int>(
                                          std::min<std::chrono::milliseconds::
                                                       rep>(left.count(), 100)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll on listener failed", errno);
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept failed", errno);
    }
    return fd;
  }
}

void send_hello(int fd, int world, int rank) {
  const Hello h{kHelloMagic, world, rank};
  write_all(fd, &h, sizeof(h));
}

int check_hello(int fd, int world) {
  Hello h{};
  read_all(fd, &h, sizeof(h));
  if (h.magic != kHelloMagic) {
    throw ProtocolError("bad hello magic — peer is not a zipflm endpoint");
  }
  if (h.world != world) {
    throw ProtocolError("world-size handshake mismatch: peer joined a " +
                        std::to_string(h.world) + "-rank world, expected " +
                        std::to_string(world));
  }
  if (h.rank < 0 || h.rank >= world) {
    throw ProtocolError("hello carries out-of-range rank " +
                        std::to_string(h.rank));
  }
  return h.rank;
}

}  // namespace

std::vector<std::unique_ptr<Transport>> socketpair_mesh(int world_size) {
  ZIPFLM_CHECK(world_size >= 1, "socketpair_mesh needs at least one rank");
  const auto w = static_cast<std::size_t>(world_size);
  // mesh[i][j] = the fd rank i uses to talk to rank j.
  std::vector<std::vector<int>> mesh(w, std::vector<int>(w, -1));
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = i + 1; j < w; ++j) {
      int pair[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
        throw_errno("socketpair failed", errno);
      }
      set_nonblocking(pair[0]);
      set_nonblocking(pair[1]);
      mesh[i][j] = pair[0];
      mesh[j][i] = pair[1];
    }
  }
  std::vector<std::unique_ptr<Transport>> out;
  out.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    out.push_back(std::make_unique<SocketTransport>(
        std::move(mesh[i]), static_cast<int>(i), "socket"));
  }
  return out;
}

std::unique_ptr<Transport> rendezvous(const std::string& address, int rank,
                                      int world_size,
                                      const RendezvousOptions& opts) {
  ZIPFLM_CHECK(world_size >= 1, "rendezvous needs at least one rank");
  ZIPFLM_CHECK(rank >= 0 && rank < world_size,
               "rendezvous rank out of range");
  const ParsedAddress addr = parse_address(address);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts.timeout_seconds));

  std::vector<int> fds(static_cast<std::size_t>(world_size), -1);
  int listen_fd = -1;
  try {
    if (world_size > 1) listen_fd = make_listener(addr, rank);

    // Dial every lower rank; they are already listening (or soon will
    // be — dial() retries until the deadline).
    for (int peer = 0; peer < rank; ++peer) {
      const int fd = dial(addr, peer, deadline);
      try {
        send_hello(fd, world_size, rank);
        const int got = check_hello(fd, world_size);
        if (got != peer) {
          throw ProtocolError("dialed rank " + std::to_string(peer) +
                              " but its hello claims rank " +
                              std::to_string(got));
        }
      } catch (...) {
        // Not in fds[] yet — close here or the peer blocks on a
        // half-open connection forever instead of seeing EOF.
        ::close(fd);
        throw;
      }
      fds[static_cast<std::size_t>(peer)] = fd;
    }

    // Accept every higher rank; the hello tells us which one arrived.
    for (int remaining = world_size - 1 - rank; remaining > 0; --remaining) {
      const int fd = accept_one(listen_fd, deadline);
      int got = -1;
      try {
        got = check_hello(fd, world_size);
        if (got <= rank || fds[static_cast<std::size_t>(got)] >= 0) {
          throw ProtocolError("unexpected hello from rank " +
                              std::to_string(got));
        }
        send_hello(fd, world_size, rank);
      } catch (...) {
        // Not in fds[] yet — close here or the dialer blocks on a
        // half-open connection forever instead of seeing EOF.
        ::close(fd);
        throw;
      }
      if (!addr.is_unix) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      fds[static_cast<std::size_t>(got)] = fd;
    }
  } catch (...) {
    for (const int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (addr.is_unix && world_size > 1) {
      ::unlink(unix_path(addr, rank).c_str());
    }
    throw;
  }
  if (listen_fd >= 0) ::close(listen_fd);
  if (addr.is_unix && world_size > 1) {
    ::unlink(unix_path(addr, rank).c_str());
  }
  for (const int fd : fds) {
    if (fd >= 0) set_nonblocking(fd);
  }
  return std::make_unique<SocketTransport>(std::move(fds), rank, "socket");
}

std::unique_ptr<Transport> rendezvous_from_env(const RendezvousOptions& opts) {
  const char* rank = std::getenv("ZIPFLM_NET_RANK");
  const char* world = std::getenv("ZIPFLM_NET_WORLD");
  const char* address = std::getenv("ZIPFLM_NET_RENDEZVOUS");
  ZIPFLM_CHECK(rank != nullptr && world != nullptr && address != nullptr,
               "ZIPFLM_NET_RANK / ZIPFLM_NET_WORLD / ZIPFLM_NET_RENDEZVOUS "
               "must all be set (run under zipflm_launch)");
  return rendezvous(address, std::atoi(rank), std::atoi(world), opts);
}

}  // namespace zipflm::net
