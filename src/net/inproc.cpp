#include "zipflm/net/inproc.hpp"

#include <chrono>
#include <cstring>
#include <string>

namespace zipflm::net {
namespace {

/// One directed lane of the mesh: from -> to.
struct Channel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::vector<std::byte>> queue;
  bool closed = false;
};

}  // namespace

struct InProcHub::State {
  explicit State(int world)
      : world(world),
        channels(static_cast<std::size_t>(world) *
                 static_cast<std::size_t>(world)) {
    for (auto& ch : channels) ch = std::make_unique<Channel>();
  }

  Channel& lane(int from, int to) {
    return *channels[static_cast<std::size_t>(from) *
                         static_cast<std::size_t>(world) +
                     static_cast<std::size_t>(to)];
  }

  int world;
  std::vector<std::unique_ptr<Channel>> channels;
};

namespace {

class InProcEndpoint final : public Transport {
 public:
  InProcEndpoint(std::shared_ptr<InProcHub::State> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  ~InProcEndpoint() override { close(); }

  int rank() const noexcept override { return rank_; }
  int world_size() const noexcept override { return state_->world; }
  const char* kind() const noexcept override { return "inproc"; }

  void close() override {
    if (closed_) return;
    closed_ = true;
    for (int peer = 0; peer < state_->world; ++peer) {
      if (peer == rank_) continue;
      for (Channel* ch : {&state_->lane(rank_, peer),
                          &state_->lane(peer, rank_)}) {
        std::lock_guard lock(ch->mutex);
        ch->closed = true;
        ch->cv.notify_all();
      }
    }
  }

 protected:
  std::shared_ptr<Completion::Op> post_send(
      int peer, std::span<const std::byte> data) override {
    auto op = std::make_shared<Completion::Op>();
    op->is_send = true;
    op->peer = peer;
    op->size = data.size();
    Channel& ch = state_->lane(rank_, peer);
    {
      std::lock_guard lock(ch.mutex);
      if (closed_ || ch.closed) {
        fail(*op, std::make_exception_ptr(PeerClosedError(
                      "send to rank " + std::to_string(peer) +
                      ": channel closed")));
        return op;
      }
      ch.queue.emplace_back(data.begin(), data.end());
    }
    ch.cv.notify_all();
    op->state = Completion::Op::State::Done;
    op->transferred = data.size();
    stats_.wire_bytes_sent += data.size();
    return op;
  }

  std::shared_ptr<Completion::Op> post_recv(
      int peer, std::span<std::byte> into) override {
    auto op = std::make_shared<Completion::Op>();
    op->is_send = false;
    op->peer = peer;
    op->data = into.data();
    op->size = into.size();
    try_complete_recv(*op);  // completes immediately if already queued
    // Still pending: remember it so progress() can complete it later.
    // Only the driving thread touches the registry — no lock needed.
    if (!op->done()) pending_recvs_.push_back(op);
    return op;
  }

  void progress(double max_wait_seconds) override {
    if (sweep_pending_recvs() || pending_recvs_.empty() ||
        max_wait_seconds <= 0.0) {
      return;
    }
    // Bounded wait on the oldest pending recv's lane.  A message
    // arriving on a *different* lane wakes only that lane's cv, so the
    // worst case is sleeping out the bound — acceptable for an event
    // loop that calls progress() with sub-millisecond slices.
    const auto front = pending_recvs_.front().lock();
    if (!front) {
      sweep_pending_recvs();
      return;
    }
    Channel& ch = state_->lane(front->peer, rank_);
    {
      std::unique_lock lock(ch.mutex);
      ch.cv.wait_for(lock, std::chrono::duration<double>(max_wait_seconds),
                     [&] { return !ch.queue.empty() || ch.closed || closed_; });
    }
    sweep_pending_recvs();
  }

  void progress_until(Completion::Op& op) override {
    // Sends are complete (or failed) at post time; only receives wait.
    ZIPFLM_ASSERT(!op.is_send, "inproc send left pending");
    Channel& ch = state_->lane(op.peer, rank_);
    std::unique_lock lock(ch.mutex);
    const auto ready = [&] {
      return !ch.queue.empty() || ch.closed || closed_;
    };
    if (timeout_seconds() <= 0.0) {
      ch.cv.wait(lock, ready);
    } else if (!ch.cv.wait_for(
                   lock, std::chrono::duration<double>(timeout_seconds()),
                   ready)) {
      fail(op, std::make_exception_ptr(TransportTimeoutError(
                   "recv from rank " + std::to_string(op.peer) +
                   " timed out after " + std::to_string(timeout_seconds()) +
                   "s")));
      return;
    }
    complete_recv_locked(op, ch);
  }

 private:
  /// Complete every registered pending recv whose message arrived (or
  /// whose lane closed); drop resolved and abandoned entries.  Returns
  /// true when at least one operation completed this pass.
  bool sweep_pending_recvs() {
    bool completed = false;
    for (std::size_t i = 0; i < pending_recvs_.size();) {
      const auto op = pending_recvs_[i].lock();
      if (op && !op->done()) try_complete_recv(*op);
      if (!op || op->done()) {
        completed = completed || (op && op->done());
        pending_recvs_.erase(pending_recvs_.begin() +
                             static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++i;
    }
    return completed;
  }

  void try_complete_recv(Completion::Op& op) {
    Channel& ch = state_->lane(op.peer, rank_);
    std::lock_guard lock(ch.mutex);
    if (!ch.queue.empty() || ch.closed || closed_) {
      complete_recv_locked(op, ch);
    }
  }

  /// Precondition: the channel has a message, or is closed.
  void complete_recv_locked(Completion::Op& op, Channel& ch) {
    if (ch.queue.empty()) {
      // Drained and closed: the peer is gone for good.
      fail(op, std::make_exception_ptr(PeerClosedError(
                   "recv from rank " + std::to_string(op.peer) +
                   ": channel closed")));
      return;
    }
    const std::vector<std::byte>& msg = ch.queue.front();
    if (msg.size() != op.size) {
      fail(op, std::make_exception_ptr(ProtocolError(
                   "recv from rank " + std::to_string(op.peer) + " posted " +
                   std::to_string(op.size) + " bytes but message holds " +
                   std::to_string(msg.size()))));
      return;
    }
    const std::size_t n = msg.size();  // msg dangles once popped
    std::memcpy(op.data, msg.data(), n);
    ch.queue.pop_front();
    op.transferred = n;
    op.state = Completion::Op::State::Done;
    stats_.wire_bytes_received += n;
  }

  static void fail(Completion::Op& op, std::exception_ptr error) {
    op.state = Completion::Op::State::Failed;
    op.error = std::move(error);
  }

  std::shared_ptr<InProcHub::State> state_;
  int rank_;
  bool closed_ = false;
  /// Recvs posted before their message existed, awaiting progress().
  /// weak_ptr: a caller abandoning its Completion must not pin the op.
  std::vector<std::weak_ptr<Completion::Op>> pending_recvs_;
};

}  // namespace

InProcHub::InProcHub(int world_size) {
  ZIPFLM_CHECK(world_size >= 1, "InProcHub needs at least one rank");
  state_ = std::make_shared<State>(world_size);
}

int InProcHub::world_size() const noexcept { return state_->world; }

std::unique_ptr<Transport> InProcHub::endpoint(int rank) {
  ZIPFLM_CHECK(rank >= 0 && rank < state_->world,
               "endpoint rank out of range");
  return std::make_unique<InProcEndpoint>(state_, rank);
}

}  // namespace zipflm::net
