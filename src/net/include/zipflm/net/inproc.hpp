// In-process transport backend: N endpoints in one address space wired
// through lock-protected message queues, one per directed peer pair.
// No kernel, no partial transfers, no reordering — the deterministic
// oracle that the socket backend is byte-diffed against in tests.
//
// Sends complete at post time (the payload is copied into the channel);
// receives complete when a message of exactly the posted size is
// available.  Closing an endpoint closes every channel that touches it:
// peers may still drain messages queued before the close, after which
// their operations fail with PeerClosedError — the same drain-then-fail
// order a real socket gives after the remote end disappears.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "zipflm/net/transport.hpp"

namespace zipflm::net {

class InProcHub {
 public:
  explicit InProcHub(int world_size);

  int world_size() const noexcept;

  /// Create the endpoint for `rank`.  Each rank's endpoint is created
  /// once and then owned (and driven) by that rank's thread.
  std::unique_ptr<Transport> endpoint(int rank);

  struct State;  // shared queue mesh; public so endpoints can hold it

 private:
  std::shared_ptr<State> state_;
};

}  // namespace zipflm::net
