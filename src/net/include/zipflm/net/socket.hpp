// Socket transport backend: real file descriptors under the ring
// collectives.
//
// Two ways to build a world:
//
//  * socketpair_mesh(N)     — N endpoints in ONE process, every peer
//    pair joined by a socketpair(AF_UNIX).  Used by CommWorld's Socket
//    backend: the simulated GPUs stay threads, but every collective
//    byte crosses the kernel with real partial writes and backpressure.
//  * rendezvous(addr, r, N) — one endpoint in ONE OS process of an
//    N-process world (zipflm_launch / bench --transport socket).
//    Address forms:
//      "unix:<prefix>"       rank r listens on the path "<prefix>.<r>"
//      "tcp:<host>:<port>"   rank r listens on port (<port> + r)
//    Wiring rule: rank r actively connects to every p < r and accepts
//    from every p > r, so each pair meets exactly once.  Each accepted
//    or initiated connection starts with a hello exchange
//    {magic, world_size, rank} in both directions; a magic or
//    world-size mismatch is a ProtocolError, and the hello identifies
//    which peer rank owns an accepted connection.
//
// The endpoint is a poll()-driven progress engine over nonblocking fds
// with per-peer FIFO send and receive queues.  Every wait services all
// peers in both directions, so two ranks pushing large simultaneous
// payloads at each other drain one another instead of deadlocking on
// full kernel buffers.  EOF or a connection reset fails every operation
// on that peer with PeerClosedError — after any bytes the peer sent
// before dying have been drained.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "zipflm/net/transport.hpp"

namespace zipflm::net {

/// All endpoints of an in-process world, index == rank.  Endpoint i is
/// then driven by rank i's thread.
std::vector<std::unique_ptr<Transport>> socketpair_mesh(int world_size);

struct RendezvousOptions {
  /// Patience for the whole connect/accept/handshake phase.  Peers
  /// launched by the same runner may come up seconds apart.
  double timeout_seconds = 30.0;
};

/// Join an N-process world as `rank`.  Blocks until every pairwise
/// connection is established and handshaken, or throws
/// TransportTimeoutError / ProtocolError.
std::unique_ptr<Transport> rendezvous(const std::string& address, int rank,
                                      int world_size,
                                      const RendezvousOptions& opts = {});

/// rendezvous() with rank / world / address taken from the environment
/// set by zipflm_launch: ZIPFLM_NET_RANK, ZIPFLM_NET_WORLD,
/// ZIPFLM_NET_RENDEZVOUS.  Throws ConfigError when unset.
std::unique_ptr<Transport> rendezvous_from_env(
    const RendezvousOptions& opts = {});

}  // namespace zipflm::net
