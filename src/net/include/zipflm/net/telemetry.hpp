// zipflm::net::telemetry — the wire half of the telemetry plane.
//
// Ships trace-chunk and metrics-snapshot frames from worker processes
// to a collector over any net::Transport, and estimates each worker's
// clock offset so the merged export (obs/telemetry.hpp) is one
// time-aligned document.
//
// Framing mirrors the serve wire protocol: every frame is an 8-byte LE
// length followed by a payload whose first byte is the FrameType;
// decoding is strict — truncation, trailing bytes, or an unknown type
// throw net::ProtocolError.
//
// Session shape (collector drives, worker answers):
//
//   collector                         worker
//   ---------                         ------
//   Begin{probes, wants}       ->
//   ClockProbe{id, t0}         ->     (t1 = clock on arrival)
//                              <-     ClockReply{id, t1, t2}
//   (t3 = clock on arrival)           ... x probes ...
//                              <-     TraceChunk*        (if wanted)
//                              <-     MetricsChunk       (if wanted)
//                              <-     Done
//
// Clock math (NTP's four timestamps): one probe gives
//
//   offset = ((t1 - t0) + (t2 - t3)) / 2        (worker − collector)
//   rtt    = (t3 - t0) - (t2 - t1)
//
// The estimate is the MEDIAN offset over `probes` exchanges — robust
// to the occasional probe that eats a scheduler hiccup — and its error
// is bounded by the asymmetry of the best probe's two legs, at most
// min_rtt / 2.  Both sides must sample the SAME clock their trace
// events carry (obs::trace_now_ns), whose epoch pins per process at
// first use: that per-process epoch difference is exactly the skew
// being estimated.
//
// Threading: both helpers follow the transport's single-driving-thread
// contract; run them after training/serving traffic has quiesced (the
// bench runs them right after the final barrier).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "zipflm/net/transport.hpp"
#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/telemetry.hpp"

namespace zipflm::net::telemetry {

/// Nanosecond clock to align; defaults to obs::trace_now_ns.
using ClockFn = std::function<std::uint64_t()>;

enum class FrameType : std::uint8_t {
  Begin = 1,
  ClockProbe = 2,
  ClockReply = 3,
  TraceChunk = 4,
  MetricsChunk = 5,
  Done = 6,
};

/// Hard ceiling per frame; large traces split into multiple chunks.
constexpr std::size_t kMaxFrameBytes = 16u << 20;
/// Soft split target for trace chunks.
constexpr std::size_t kTraceChunkTargetBytes = 1u << 20;

struct Begin {
  std::uint32_t probes = 16;
  bool want_trace = true;
  bool want_metrics = true;
};

struct ClockProbe {
  std::uint64_t probe_id = 0;
  std::uint64_t send_ns = 0;  ///< collector clock at send (debug aid)
};

struct ClockReply {
  std::uint64_t probe_id = 0;
  std::uint64_t recv_ns = 0;  ///< worker clock when the probe arrived
  std::uint64_t send_ns = 0;  ///< worker clock when the reply left
};

struct ClockEstimate {
  std::int64_t offset_ns = 0;   ///< median (worker − collector)
  std::int64_t min_rtt_ns = 0;  ///< best probe round-trip; error ≤ rtt/2
  int probes = 0;
};

/// Everything one worker shipped, ready to merge: `trace` has
/// clock_offset_ns filled from the estimate (pid left for the caller).
struct WorkerTelemetry {
  obs::ProcessTrace trace;
  obs::MetricsSnapshot metrics;
  ClockEstimate clock;
};

struct CollectOptions {
  int probes = 16;
  bool want_trace = true;
  bool want_metrics = true;
  ClockFn clock;  ///< empty = obs::trace_now_ns
};

/// Collector side: run one full session against `peer`.
WorkerTelemetry collect_from_peer(Transport& transport, int peer,
                                  const CollectOptions& options = {});

/// Worker side: answer one collector session (blocks until Done sent).
/// Ships this process's trace lanes and the global metrics registry
/// when the collector asks for them.
void serve_collector(Transport& transport, int collector_peer,
                     ClockFn clock = {});

// --- frame codecs (public for tests and the serve Stats frame) ------

std::vector<std::byte> encode_begin(const Begin& begin);
Begin decode_begin(const std::vector<std::byte>& payload);

std::vector<std::byte> encode_clock_probe(const ClockProbe& probe);
ClockProbe decode_clock_probe(const std::vector<std::byte>& payload);

std::vector<std::byte> encode_clock_reply(const ClockReply& reply);
ClockReply decode_clock_reply(const std::vector<std::byte>& payload);

/// Split one process's lanes into TraceChunk frames of roughly
/// `target_bytes` each (a lane's events may span several chunks; its
/// drop count is carried once).
std::vector<std::vector<std::byte>> encode_trace_chunks(
    const obs::ProcessTrace& trace,
    std::size_t target_bytes = kTraceChunkTargetBytes);
/// Merge one TraceChunk into `into` (appending to an existing lane
/// when the chunk continues it).  Sets `into.label` from the chunk.
void merge_trace_chunk(const std::vector<std::byte>& payload,
                       obs::ProcessTrace& into);

std::vector<std::byte> encode_metrics_frame(const obs::MetricsSnapshot& snap);
obs::MetricsSnapshot decode_metrics_frame(
    const std::vector<std::byte>& payload);

std::vector<std::byte> encode_done();

/// Body-level metrics codec (no frame-type byte) — the serve wire's
/// StatsReply embeds a snapshot with exactly this encoding.
void write_metrics_snapshot(std::vector<std::byte>& out,
                            const obs::MetricsSnapshot& snap);
obs::MetricsSnapshot read_metrics_snapshot(
    const std::vector<std::byte>& bytes, std::size_t& cursor);

/// First-byte type check; throws ProtocolError on empty/unknown.
FrameType frame_type(const std::vector<std::byte>& payload);

/// Length-prefixed frame transfer over the transport.
void send_frame(Transport& transport, int peer,
                const std::vector<std::byte>& payload);
std::vector<std::byte> recv_frame(Transport& transport, int peer);

}  // namespace zipflm::net::telemetry
