// zipflm::net — the point-to-point transport layer under the collectives.
//
// A Transport is one rank's endpoint into a fully-connected world of
// `world_size` peers.  It moves raw byte messages with nonblocking
// send/recv calls that return Completion handles; the collective
// algorithms in comm/transport_comm.cpp are written purely against this
// interface, so the same ring schedules run over any backend:
//
//  * InProcHub (inproc.hpp)  — N endpoints in one process connected by
//    in-memory message queues.  No kernel involved: the deterministic
//    test oracle the socket backend is diffed against.
//  * Socket (socket.hpp)     — real file descriptors: a socketpair mesh
//    for in-process worlds, or UNIX-domain / TCP sockets joined through
//    the rendezvous protocol for true multi-process worlds
//    (zipflm_launch).
//
// Threading contract: a Transport is driven by ONE thread at a time —
// the same exclusivity the Communicator already demands (the
// AsyncCommEngine's flush() rule).  Progress is made inside wait(): a
// pending send keeps draining while the caller waits on a recv, so the
// symmetric send-right/recv-left ring steps cannot deadlock on full
// kernel buffers.
//
// Failure model: a dead peer surfaces as PeerClosedError (EOF,
// ECONNRESET, or a closed in-memory channel) on every operation that
// touches it — already-delivered messages are still readable first.  A
// configured timeout turns an indefinite wait into
// TransportTimeoutError.  The comm layer maps both onto
// CollectiveTimeoutError so rank-retire/world-rebuild semantics hold
// over real wires exactly as they do over the shared-memory barriers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "zipflm/support/error.hpp"

namespace zipflm::net {

/// Base of every transport-layer failure.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// The peer's endpoint is gone: EOF / ECONNRESET on a socket, or a
/// closed in-memory channel.  Messages sent before the close are still
/// delivered; this fires only once the stream is drained (recv) or the
/// kernel refuses the write (send).
class PeerClosedError : public TransportError {
 public:
  explicit PeerClosedError(const std::string& what) : TransportError(what) {}
};

/// A wait() exceeded the endpoint's configured timeout.
class TransportTimeoutError : public TransportError {
 public:
  explicit TransportTimeoutError(const std::string& what)
      : TransportError(what) {}
};

/// The wire protocol was violated: bad hello magic, mismatched
/// world-size handshake, or a message whose size does not match the
/// posted receive.
class ProtocolError : public TransportError {
 public:
  explicit ProtocolError(const std::string& what) : TransportError(what) {}
};

/// Per-endpoint accounting of what actually crossed the wire — framing
/// included, unlike the TrafficLedger's payload-only view.  The comm
/// layer snapshots deltas of this into the ledger's wire_bytes_* and
/// the "comm/net_*" metrics so simulated and real seconds stay
/// distinguishable.
struct NetStats {
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t wire_bytes_received = 0;
  std::uint64_t send_ops = 0;
  std::uint64_t recv_ops = 0;
  double send_wait_seconds = 0.0;  ///< blocked in wait() on sends
  double recv_wait_seconds = 0.0;  ///< blocked in wait() on recvs
};

class Transport;

/// Handle for one nonblocking operation.  Default-constructed handles
/// are vacuously complete (used for zero-byte messages).  wait() drives
/// the owning endpoint's progress engine until the operation finishes,
/// the endpoint's timeout elapses (TransportTimeoutError), or the peer
/// dies (PeerClosedError).
class Completion {
 public:
  /// One pending operation.  State transitions happen only on the
  /// (single) driving thread, inside post / progress.
  struct Op {
    enum class State : std::uint8_t { Pending, Done, Failed };
    State state = State::Pending;
    bool is_send = false;
    int peer = -1;
    /// Send: source bytes (caller keeps them alive until wait()).
    /// Recv: destination bytes.
    std::byte* data = nullptr;
    std::size_t size = 0;
    std::size_t transferred = 0;
    std::exception_ptr error;  ///< set when state == Failed

    bool done() const noexcept { return state != State::Pending; }
  };

  Completion() = default;
  Completion(Transport* transport, std::shared_ptr<Op> op)
      : transport_(transport), op_(std::move(op)) {}

  bool valid() const noexcept { return op_ != nullptr; }
  bool done() const noexcept { return op_ == nullptr || op_->done(); }

  /// Block (making progress) until the operation completes; rethrows
  /// the operation's failure.  Idempotent once complete.
  void wait();

 private:
  Transport* transport_ = nullptr;
  std::shared_ptr<Op> op_;
};

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual int rank() const noexcept = 0;
  virtual int world_size() const noexcept = 0;
  /// Backend identifier for metrics/labels: "inproc" or "socket".
  virtual const char* kind() const noexcept = 0;

  /// Post a nonblocking send of `data` to `peer`.  The bytes must stay
  /// valid and unmodified until the returned completion is waited.
  Completion send(int peer, std::span<const std::byte> data);
  /// Post a nonblocking receive of exactly `into.size()` bytes from
  /// `peer`.  Matching is FIFO per (peer -> this) direction.
  Completion recv(int peer, std::span<std::byte> into);

  /// Convenience: post and wait.
  void send_blocking(int peer, std::span<const std::byte> data) {
    send(peer, data).wait();
  }
  void recv_blocking(int peer, std::span<std::byte> into) {
    recv(peer, into).wait();
  }

  /// Drive I/O for up to `max_wait_seconds` without requiring any
  /// particular operation to finish — the building block for event
  /// loops that multiplex many peers (the serve socket frontend).
  /// Completes whatever pending operations it can, then returns; unlike
  /// wait(), hitting the time bound is normal and never fails an
  /// operation, so stream framing survives.  Same threading contract as
  /// wait(): only the endpoint's single driving thread may call it.
  virtual void progress(double max_wait_seconds) = 0;

  /// Deadline applied to each wait() call; 0 (default) waits forever.
  void set_timeout_seconds(double seconds) { timeout_seconds_ = seconds; }
  double timeout_seconds() const noexcept { return timeout_seconds_; }

  /// Tear the endpoint down: local pending operations fail, and peers
  /// observe PeerClosedError once they drain what was already sent.
  /// Idempotent; also called by destructors.
  virtual void close() = 0;

  const NetStats& stats() const noexcept { return stats_; }

 protected:
  Transport() = default;

  friend class Completion;
  /// Drive I/O until `op` completes or the timeout elapses.  Called
  /// only from the endpoint's single driving thread, via wait().
  virtual void progress_until(Completion::Op& op) = 0;

  virtual std::shared_ptr<Completion::Op> post_send(
      int peer, std::span<const std::byte> data) = 0;
  virtual std::shared_ptr<Completion::Op> post_recv(
      int peer, std::span<std::byte> into) = 0;

  void check_peer(int peer) const;

  NetStats stats_;
  double timeout_seconds_ = 0.0;
};

}  // namespace zipflm::net
