// Per-thread lock-free trace buffers exported as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing).
//
// Design constraints, in order:
//   * zero allocation and no locks on the hot path — an emit is one
//     relaxed ring-slot store plus a release head bump into a buffer
//     only the owning thread ever writes;
//   * fixed capacity, drop-oldest — a runaway region can never OOM the
//     process, it just loses its own oldest events (the export reports
//     how many were dropped per lane);
//   * compile-out — building with ZIPFLM_TRACE=0 turns every macro into
//     a no-op expression, so the instrumented hot loops carry zero cost
//     in a stripped build;
//   * runtime gate — with tracing compiled in but disabled (the default)
//     a span costs one relaxed atomic load and a branch.
//
// Lanes: every buffer belongs to a named lane that becomes one Perfetto
// track ("rank 0" .. "rank G-1", "serve scheduler", "pool worker N",
// "main").  Short-lived threads (CommWorld spawns fresh rank threads
// every run()) re-adopt their lane's buffer by name, so a 10-epoch run
// holds G rank buffers, not 10*G.
//
// Synchronization contract: export must not race live emission.  Every
// instrumented subsystem already provides the required happens-before
// edge for free — CommWorld::run joins its rank threads, ThreadPool
// emits strictly between the acquire/release pair of a region's done
// counter, and Server::stop joins the scheduler thread — so exporting
// after run()/stop()/wait has returned is race-free (and TSAN-clean).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#ifndef ZIPFLM_TRACE
#define ZIPFLM_TRACE 1
#endif

namespace zipflm::obs {

/// One recorded event.  `name` and the arg names must be string
/// literals (or otherwise outlive the export) — the ring stores the
/// pointer, never a copy, to keep an emit allocation-free.
struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 4;

  const char* name = nullptr;
  const char* arg_name[kMaxArgs] = {};  ///< optional numeric args, nullptr = none
  double arg[kMaxArgs] = {};
  std::uint64_t start_ns = 0;  ///< since the process trace epoch
  std::uint64_t dur_ns = 0;    ///< 0 for instants
  bool instant = false;
};

/// What one export wrote: totals over every lane.
struct TraceExportStats {
  std::uint64_t events = 0;   ///< events written to the JSON
  std::uint64_t dropped = 0;  ///< events lost to drop-oldest before export
  std::size_t lanes = 0;
};

namespace detail {

extern std::atomic<bool> g_enabled;

/// Nanoseconds since the process trace epoch (first use).
std::uint64_t now_ns();

/// JSON string-escape `s` into `out` (no surrounding quotes).  Shared
/// by the trace and metrics exporters; also used by the telemetry
/// merge writer.
void json_escape(std::ostream& out, std::string_view s);

/// Append to the calling thread's buffer (creating/adopting one on
/// first use).  Only called with tracing enabled.
void emit(const TraceEvent& ev);

}  // namespace detail

/// Cheap hot-path gate: compiled-in and runtime-enabled.
inline bool trace_enabled() noexcept {
#if ZIPFLM_TRACE
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Turn runtime collection on/off.  Existing buffers are kept; call
/// trace_clear() for a fresh timeline.
void trace_enable(bool on);

/// The trace clock: nanoseconds since this process's trace epoch (the
/// first use, pinned by trace_enable).  This is the timebase every
/// recorded event carries, and therefore the one the telemetry
/// clock-offset handshake must sample — aligning any other clock would
/// align nothing.
inline std::uint64_t trace_now_ns() { return detail::now_ns(); }

/// Label this process's lane group in merged multi-process exports and
/// the local export's `process_name` metadata ("rank 2", "serve
/// frontend", ...).  Default "zipflm".  Cold path (mutex).
void set_process_label(const std::string& label);
std::string process_label();

/// Events each lane's ring holds before drop-oldest kicks in.  Applies
/// to buffers created afterwards; call before the first emit.
void trace_set_buffer_capacity(std::size_t events);

/// Drop every recorded event (buffers and lane registrations survive).
void trace_clear();

/// Bind the calling thread to a named Perfetto lane.  Threads sharing a
/// label across their (non-overlapping) lifetimes share one buffer —
/// the CommWorld rank-thread pattern.  `sort_key` orders tracks in the
/// UI (ranks first, then scheduler, then pool).  Cold path (mutex).
void set_thread_lane(const std::string& label, int sort_key);

/// Record a zero-duration instant event on the calling thread's lane.
inline void trace_instant(const char* name, const char* arg_name = nullptr,
                          double arg = 0.0) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.arg_name[0] = arg_name;
  ev.arg[0] = arg;
  ev.start_ns = detail::now_ns();
  ev.instant = true;
  detail::emit(ev);
}

/// RAII span: records a complete event covering its lifetime.  When
/// tracing is disabled at construction the destructor does nothing —
/// the whole scope costs one atomic load.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (!trace_enabled()) return;
    name_ = name;
    start_ns_ = detail::now_ns();
  }
  SpanScope(const char* name, const char* arg0_name, double arg0)
      : SpanScope(name) {
    arg_name_[0] = arg0_name;
    arg_[0] = arg0;
  }
  SpanScope(const char* name, const char* arg0_name, double arg0,
            const char* arg1_name, double arg1)
      : SpanScope(name, arg0_name, arg0) {
    arg_name_[1] = arg1_name;
    arg_[1] = arg1;
  }

  ~SpanScope() {
    if (name_ == nullptr) return;
    TraceEvent ev;
    ev.name = name_;
    for (std::size_t i = 0; i < TraceEvent::kMaxArgs; ++i) {
      ev.arg_name[i] = arg_name_[i];
      ev.arg[i] = arg_[i];
    }
    ev.start_ns = start_ns_;
    ev.dur_ns = detail::now_ns() - start_ns_;
    detail::emit(ev);
  }

  /// Attach/overwrite the numbered numeric arg (e.g. a byte count
  /// known only mid-scope).  No-op when the span is inactive.
  void set_arg(const char* name, double value) noexcept {
    set_slot(0, name, value);
  }
  void set_arg2(const char* name, double value) noexcept {
    set_slot(1, name, value);
  }
  void set_arg3(const char* name, double value) noexcept {
    set_slot(2, name, value);
  }
  void set_arg4(const char* name, double value) noexcept {
    set_slot(3, name, value);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  void set_slot(std::size_t i, const char* name, double value) noexcept {
    if (name_ == nullptr) return;
    arg_name_[i] = name;
    arg_[i] = value;
  }

  const char* name_ = nullptr;  ///< nullptr = inactive
  const char* arg_name_[TraceEvent::kMaxArgs] = {};
  double arg_[TraceEvent::kMaxArgs] = {};
  std::uint64_t start_ns_ = 0;
};

/// Serialize every lane's surviving events as Chrome trace-event JSON
/// ({"traceEvents":[...]}) with one tid per lane plus thread_name /
/// thread_sort_index metadata.  See the synchronization contract above.
TraceExportStats write_chrome_trace(std::ostream& out);
TraceExportStats write_chrome_trace_file(const std::string& path);

}  // namespace zipflm::obs

// Scope macros: compile to nothing under ZIPFLM_TRACE=0 so callers
// never need their own #if.
#if ZIPFLM_TRACE
#define ZIPFLM_OBS_CONCAT2(a, b) a##b
#define ZIPFLM_OBS_CONCAT(a, b) ZIPFLM_OBS_CONCAT2(a, b)
#define ZIPFLM_TRACE_SPAN(name) \
  ::zipflm::obs::SpanScope ZIPFLM_OBS_CONCAT(zipflm_span_, __LINE__)(name)
#define ZIPFLM_TRACE_SPAN_ARG(name, arg_name, arg_value)          \
  ::zipflm::obs::SpanScope ZIPFLM_OBS_CONCAT(zipflm_span_,        \
                                             __LINE__)(name, arg_name, \
                                                       arg_value)
#define ZIPFLM_TRACE_INSTANT(...) ::zipflm::obs::trace_instant(__VA_ARGS__)
#else
#define ZIPFLM_TRACE_SPAN(name) ((void)0)
#define ZIPFLM_TRACE_SPAN_ARG(name, arg_name, arg_value) ((void)0)
#define ZIPFLM_TRACE_INSTANT(...) ((void)0)
#endif
