// Owned trace snapshots and the merged multi-process Chrome export —
// the data half of the telemetry plane.
//
// The ring buffers store `const char*` literals that are only valid in
// the emitting process, so anything that leaves the process (or merely
// outlives an export) first converts to the owned types below.  A
// `ProcessTrace` is one process's complete lane set plus the clock
// offset the collector estimated for it; the merged writer lays the
// processes out as Chrome pids (with `process_name` metadata) and maps
// every worker timestamp into the collector's timebase:
//
//     aligned_ns = event.start_ns - clock_offset_ns
//
// where clock_offset_ns is the NTP-style estimate of (worker clock −
// collector clock).  After alignment the whole document is shifted so
// the earliest event lands at ts 0 — Chrome handles negative
// timestamps poorly and the absolute origin is meaningless anyway.
//
// The wire encoding of these types lives in zipflm::net::telemetry
// (src/net) because obs may depend on nothing; this header is pure
// data + JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "zipflm/obs/trace.hpp"

namespace zipflm::obs {

/// A TraceEvent whose strings are owned — safe to ship, merge, and
/// keep past the emitting process's lifetime.  Empty arg name = slot
/// unset.
struct OwnedTraceEvent {
  std::string name;
  std::string arg_name[TraceEvent::kMaxArgs];
  double arg[TraceEvent::kMaxArgs] = {};
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  bool instant = false;
};

/// One lane's surviving events (oldest first) plus its drop-oldest
/// loss count at snapshot time.
struct LaneSnapshot {
  std::string label;
  int sort_key = 0;
  std::uint64_t dropped = 0;
  std::vector<OwnedTraceEvent> events;
};

/// One process's contribution to a merged trace.
struct ProcessTrace {
  std::string label;  ///< `process_name` metadata ("rank 2", ...)
  int pid = 1;        ///< Chrome pid; also the process sort index
  /// Estimated (this process's trace clock − collector's trace clock),
  /// subtracted from every timestamp at merge.  0 for the collector.
  std::int64_t clock_offset_ns = 0;
  std::vector<LaneSnapshot> lanes;
};

/// Owned copy of every lane the local Collector holds (including empty
/// ones with drops).  Same synchronization contract as
/// write_chrome_trace: snapshot after the emitting threads are joined.
std::vector<LaneSnapshot> trace_lane_snapshot();

/// Serialize one or more processes' lanes as a single Chrome
/// trace-event document: per-pid `process_name`/`process_sort_index`
/// metadata, per-(pid, lane) `thread_name`/`thread_sort_index`
/// metadata, and clock-aligned events.  The local single-process
/// export is the one-element case of this writer.
TraceExportStats write_chrome_trace_merged(
    std::ostream& out, const std::vector<ProcessTrace>& processes);
TraceExportStats write_chrome_trace_merged_file(
    const std::string& path, const std::vector<ProcessTrace>& processes);

}  // namespace zipflm::obs
