// Central registry of named counters / gauges / histograms — the one
// place every subsystem's instrumentation lands, snapshotted as a
// single JSON document.
//
// Hot-path discipline: look a metric up once (registry lookups take a
// shared lock and allocate on first registration), cache the returned
// reference — addresses are stable for the process lifetime — then
// update it with plain relaxed atomics.  There is no global exclusive
// lock anywhere on the update path, unlike the PhaseTimers mutex map
// this registry replaces.
//
// Metric name convention: "<subsystem>/<what>[_<unit>]", e.g.
// "phase/forward_seconds", "comm/bytes_sent", "serve/queue_depth".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace zipflm::obs {

/// Monotonic event count.  Relaxed increments: totals are exact, only
/// cross-metric ordering is unspecified (fine for telemetry).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value / accumulating double.  add() and set_max() CAS-loop so
/// concurrent updaters never lose a contribution.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-side copy of a Histogram (or of a LatencyHistogram — the
/// bucketing is identical, so snapshots from either source report the
/// same percentiles for the same observations).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty
  std::vector<std::uint64_t> buckets;

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Nearest-rank bucket-upper percentile, clamped to [min, max] —
  /// bit-compatible with LatencyHistogram::percentile.
  double percentile(double p) const;

  /// The window between `earlier` and this snapshot of the same
  /// histogram: per-bucket count deltas, so percentile() answers "over
  /// the last interval" instead of "since process start".  min/max are
  /// carried from the newer snapshot (the atomics only track lifetime
  /// extremes), so window percentiles clamp against lifetime bounds —
  /// an approximation, documented in DESIGN.md §10.
  HistogramSnapshot since(const HistogramSnapshot& earlier) const;
};

/// Thread-safe log-spaced histogram, bucket-compatible with
/// zipflm::LatencyHistogram (256 buckets over (0, 100 s] plus
/// overflow).  record() is a handful of relaxed atomic updates.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 256;

  void record(double value) noexcept;
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

  static std::size_t bucket_for(double value) noexcept;
  static double bucket_upper(std::size_t bucket) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +-infinity sentinels so concurrent first observations CAS-narrow
  /// without any claim protocol; snapshot() masks them while empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One named-value view of the whole registry, taken atomically enough
/// for telemetry (each metric is read once; cross-metric skew is
/// bounded by the snapshot loop, not by any lock).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  /// Process-wide registry; subsystems share it by name.
  static MetricsRegistry& global();

  /// Find-or-create.  Returned references stay valid (and keep their
  /// identity) for the registry's lifetime — cache them in hot loops.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  /// The unified JSON document: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,mean,min,max,p50,p95,p99}}}.
  std::string to_json() const;

  /// Zero every metric whose name starts with `prefix` (all of them
  /// when empty).  Registrations — and cached references — survive.
  void reset(std::string_view prefix = {});

 private:
  template <typename T>
  T& find_or_create(std::map<std::string, std::unique_ptr<T>>& table,
                    std::string_view name);

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace zipflm::obs
