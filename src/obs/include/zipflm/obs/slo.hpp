// Rolling-window SLO health monitor over registry snapshots.
//
// A sampler thread (bench_serve_soak's probe, zipflm_top, or any
// operator loop) feeds periodic MetricsSnapshots to observe(); each
// call closes one window and evaluates three rules on the deltas since
// the previous call:
//
//   latency_tail  p99/p50 of `<scope>/request_seconds` over the window
//   reject_rate   Δrejected / Δ(admitted + rejected)
//   queue_depth   max over every `<scope>[/s<k>]/queue_depth` gauge
//
// Trip/clear is hysteretic: a rule trips only after `trip_after`
// consecutive bad windows and clears only after `clear_after`
// consecutive windows at or below `clear_fraction` x threshold, so a
// single slow batch step cannot flap an alert.  Windows with too few
// samples (below `min_window_count`) leave the rule's state untouched
// — silence is not health, but it is not sickness either.
//
// Transitions invoke the alert hook and, when export is on, land in
// the registry itself (`slo/<rule>/tripped|value|trips`) so the SLO
// state rides every metrics snapshot a collector pulls.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "zipflm/obs/metrics.hpp"

namespace zipflm::obs {

struct SloThresholds {
  double max_p99_over_p50 = 5.0;
  double max_reject_rate = 0.25;
  double max_queue_depth = 64.0;
};

struct SloOptions {
  /// Metrics namespace to watch: `<scope>/request_seconds`,
  /// `<scope>/requests_{admitted,rejected}`, queue-depth gauges.
  std::string scope = "serve";
  SloThresholds thresholds;
  /// Windows must carry at least this many observations (histogram
  /// records for latency_tail, admission outcomes for reject_rate)
  /// to be judged; thinner windows are skipped.
  std::uint64_t min_window_count = 8;
  int trip_after = 2;   ///< consecutive bad windows before tripping
  int clear_after = 2;  ///< consecutive good windows before clearing
  /// A window is "good" only at or below threshold * clear_fraction —
  /// the hysteresis band that stops threshold-hugging flapping.
  double clear_fraction = 0.8;
  /// Publish `<export_scope>/<rule>/...` gauges and trip counters into
  /// the global registry.
  bool export_metrics = true;
  std::string export_scope = "slo";
};

/// One trip or clear transition.
struct SloAlert {
  std::string rule;
  bool tripped = false;  ///< true = trip, false = clear
  double value = 0.0;    ///< the window value that caused it
  double threshold = 0.0;
  std::uint64_t window = 0;  ///< observe() call index
};

class SloMonitor {
 public:
  explicit SloMonitor(SloOptions opts = {});

  void set_alert_hook(std::function<void(const SloAlert&)> hook);

  /// Close one window: evaluate every rule on the deltas between
  /// `snap` and the previous call's snapshot, update trip state, fire
  /// the hook, and return the transitions.  The first call only
  /// records the baseline.  Thread-safe, but windows are whatever
  /// cadence the (single) caller picks.
  std::vector<SloAlert> observe(const MetricsSnapshot& snap);

  bool any_tripped() const;
  bool tripped(const std::string& rule) const;
  std::uint64_t trips(const std::string& rule) const;
  double last_value(const std::string& rule) const;
  std::uint64_t windows() const;

  /// "rule=state(value/threshold) ..." one-liner for logs and RESULT
  /// payloads.
  std::string summary() const;

 private:
  struct RuleState {
    double threshold = 0.0;
    bool tripped = false;
    int bad_streak = 0;
    int good_streak = 0;
    std::uint64_t trips = 0;
    double last_value = 0.0;
    bool ever_evaluated = false;
  };

  void judge(const std::string& rule, double value, std::uint64_t window,
             std::vector<SloAlert>& alerts);
  void export_rule(const std::string& rule, const RuleState& st);

  SloOptions opts_;
  mutable std::mutex mutex_;
  std::function<void(const SloAlert&)> hook_;
  std::map<std::string, RuleState> rules_;
  MetricsSnapshot prev_;
  bool has_prev_ = false;
  std::uint64_t windows_ = 0;
};

}  // namespace zipflm::obs
