#include "zipflm/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>

#include "zipflm/obs/trace.hpp"  // detail::json_escape

namespace zipflm::obs {

namespace {

// Identical constants to stats/latency.cpp: bucket 0 holds (0, kFloor],
// buckets 1..kBuckets-2 are log-spaced up to kCeil, last is overflow.
// Keeping the schemes bit-compatible is what lets the unified snapshot
// reproduce ServeCounters' LatencyHistogram percentiles exactly.
constexpr double kFloor = 1e-7;  // 0.1 us
constexpr double kCeil = 100.0;  // 100 s

double growth_log() {
  static const double g = std::log(kCeil / kFloor) /
                          static_cast<double>(Histogram::kBuckets - 2);
  return g;
}

void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1,
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return std::clamp(Histogram::bucket_upper(b), min, max);
    }
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot w;
  w.buckets.resize(buckets.size());
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t prev =
        b < earlier.buckets.size() ? earlier.buckets[b] : 0;
    w.buckets[b] = buckets[b] >= prev ? buckets[b] - prev : 0;
  }
  w.count = count >= earlier.count ? count - earlier.count : 0;
  w.sum = sum - earlier.sum;
  w.min = min;
  w.max = max;
  return w;
}

std::size_t Histogram::bucket_for(double value) noexcept {
  if (!(value > kFloor)) return 0;
  if (value >= kCeil) return kBuckets - 1;
  const double idx = std::log(value / kFloor) / growth_log();
  const auto b = static_cast<std::size_t>(idx) + 1;
  return std::min(b, kBuckets - 2);
}

double Histogram::bucket_upper(std::size_t bucket) noexcept {
  if (bucket == 0) return kFloor;
  if (bucket >= kBuckets - 1) return kCeil;
  return kFloor * std::exp(growth_log() * static_cast<double>(bucket));
}

void Histogram::record(double value) noexcept {
  if (!std::isfinite(value) || value < 0.0) value = 0.0;
  buckets_[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
  atomic_add(sum_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry r;
  return r;
}

template <typename T>
T& MetricsRegistry::find_or_create(
    std::map<std::string, std::unique_ptr<T>>& table, std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    // Transparent lookup avoids a temporary string on the common
    // already-registered path.
    const auto it = table.find(std::string(name));
    if (it != table.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = table[std::string(name)];
  if (!slot) slot = std::make_unique<T>();
  return *slot;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::shared_lock lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream out;
  out.precision(17);
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ',';
    first = false;
  };
  // Metric names are user-influenced (shard scopes, session tags) —
  // escape them or one quote in a scope breaks the whole document.
  const auto key = [&](const std::string& name) {
    out << '"';
    detail::json_escape(out, name);
    out << '"';
  };

  out << "{\"counters\":{";
  for (const auto& [name, v] : s.counters) {
    comma();
    key(name);
    out << ':' << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    comma();
    key(name);
    out << ':' << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    comma();
    key(name);
    out << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"mean\":" << h.mean() << ",\"min\":" << h.min
        << ",\"max\":" << h.max << ",\"p50\":" << h.percentile(0.5)
        << ",\"p95\":" << h.percentile(0.95)
        << ",\"p99\":" << h.percentile(0.99) << '}';
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::reset(std::string_view prefix) {
  std::shared_lock lock(mutex_);
  const auto matches = [&](const std::string& name) {
    return prefix.empty() ||
           std::string_view(name).substr(0, prefix.size()) == prefix;
  };
  for (const auto& [name, c] : counters_) {
    if (matches(name)) c->reset();
  }
  for (const auto& [name, g] : gauges_) {
    if (matches(name)) g->reset();
  }
  for (const auto& [name, h] : histograms_) {
    if (matches(name)) h->reset();
  }
}

}  // namespace zipflm::obs
