#include "zipflm/obs/telemetry.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace zipflm::obs {

namespace {

void write_args(std::ostream& out, const OwnedTraceEvent& ev) {
  bool any = false;
  for (const auto& n : ev.arg_name) any = any || !n.empty();
  if (!any) return;
  out << ",\"args\":{";
  bool first = true;
  for (std::size_t i = 0; i < TraceEvent::kMaxArgs; ++i) {
    if (ev.arg_name[i].empty()) continue;
    if (!first) out << ',';
    first = false;
    out << '"';
    detail::json_escape(out, ev.arg_name[i]);
    out << "\":" << ev.arg[i];
  }
  out << '}';
}

}  // namespace

TraceExportStats write_chrome_trace_merged(
    std::ostream& out, const std::vector<ProcessTrace>& processes) {
  TraceExportStats stats;

  // One pass to find the earliest aligned timestamp: the whole
  // document is shifted so it lands at ts 0 (Chrome dislikes negative
  // timestamps, and clock alignment can push the fastest-starting
  // worker's events below the collector's origin).
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const ProcessTrace& pt : processes) {
    for (const LaneSnapshot& lane : pt.lanes) {
      for (const OwnedTraceEvent& ev : lane.events) {
        base = std::min(base, static_cast<std::int64_t>(ev.start_ns) -
                                  pt.clock_offset_ns);
      }
    }
  }
  if (base == std::numeric_limits<std::int64_t>::max()) base = 0;

  const auto saved_precision = out.precision(15);
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ',';
    first = false;
  };

  for (const ProcessTrace& pt : processes) {
    comma();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pt.pid
        << ",\"args\":{\"name\":\"";
    detail::json_escape(out, pt.label);
    out << "\"}}";
    comma();
    out << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pt.pid
        << ",\"args\":{\"sort_index\":" << pt.pid << "}}";

    // Stable tid assignment: lanes arrive pre-ordered by (sort_key,
    // label) from trace_lane_snapshot; tids are per-pid.
    for (std::size_t tid = 0; tid < pt.lanes.size(); ++tid) {
      const LaneSnapshot& lane = pt.lanes[tid];
      if (lane.events.empty() && lane.dropped == 0) continue;
      ++stats.lanes;
      stats.dropped += lane.dropped;

      comma();
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pt.pid
          << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
      detail::json_escape(out, lane.label);
      if (lane.dropped > 0) out << " (dropped " << lane.dropped << ")";
      out << "\"}}";
      comma();
      out << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":" << pt.pid
          << ",\"tid\":" << tid
          << ",\"args\":{\"sort_index\":" << lane.sort_key << "}}";

      for (const OwnedTraceEvent& ev : lane.events) {
        const std::int64_t aligned =
            static_cast<std::int64_t>(ev.start_ns) - pt.clock_offset_ns - base;
        comma();
        // Chrome trace timestamps are microseconds; keep ns resolution
        // with three decimals.
        out << "{\"name\":\"";
        detail::json_escape(out, ev.name);
        out << "\",\"ph\":\"" << (ev.instant ? 'i' : 'X')
            << "\",\"pid\":" << pt.pid << ",\"tid\":" << tid
            << ",\"ts\":" << static_cast<double>(aligned) / 1e3;
        if (ev.instant) {
          out << ",\"s\":\"t\"";
        } else {
          out << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1e3;
        }
        write_args(out, ev);
        out << '}';
        ++stats.events;
      }
    }
  }
  out << "]}";
  out.precision(saved_precision);
  return stats;
}

TraceExportStats write_chrome_trace_merged_file(
    const std::string& path, const std::vector<ProcessTrace>& processes) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  const TraceExportStats stats = write_chrome_trace_merged(out, processes);
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("trace write failed: " + path);
  }
  return stats;
}

}  // namespace zipflm::obs
