#include "zipflm/obs/slo.hpp"

#include <algorithm>
#include <sstream>

namespace zipflm::obs {

namespace {

constexpr const char* kLatencyTail = "latency_tail";
constexpr const char* kRejectRate = "reject_rate";
constexpr const char* kQueueDepth = "queue_depth";

std::uint64_t counter_or_zero(const std::map<std::string, std::uint64_t>& m,
                              const std::string& name) {
  const auto it = m.find(name);
  return it == m.end() ? 0 : it->second;
}

}  // namespace

SloMonitor::SloMonitor(SloOptions opts) : opts_(std::move(opts)) {
  rules_[kLatencyTail].threshold = opts_.thresholds.max_p99_over_p50;
  rules_[kRejectRate].threshold = opts_.thresholds.max_reject_rate;
  rules_[kQueueDepth].threshold = opts_.thresholds.max_queue_depth;
}

void SloMonitor::set_alert_hook(std::function<void(const SloAlert&)> hook) {
  std::scoped_lock lock(mutex_);
  hook_ = std::move(hook);
}

void SloMonitor::judge(const std::string& rule, double value,
                       std::uint64_t window, std::vector<SloAlert>& alerts) {
  RuleState& st = rules_[rule];
  st.last_value = value;
  st.ever_evaluated = true;

  if (value > st.threshold) {
    ++st.bad_streak;
    st.good_streak = 0;
  } else if (value <= st.threshold * opts_.clear_fraction) {
    ++st.good_streak;
    st.bad_streak = 0;
  } else {
    // Hysteresis band: neither clearly bad nor clearly good — both
    // streaks restart so the band cannot be ridden into a transition.
    st.bad_streak = 0;
    st.good_streak = 0;
  }

  const bool trip = !st.tripped && st.bad_streak >= opts_.trip_after;
  const bool clear = st.tripped && st.good_streak >= opts_.clear_after;
  if (trip || clear) {
    st.tripped = trip;
    if (trip) ++st.trips;
    SloAlert alert;
    alert.rule = rule;
    alert.tripped = st.tripped;
    alert.value = value;
    alert.threshold = st.threshold;
    alert.window = window;
    alerts.push_back(std::move(alert));
  }
  export_rule(rule, st);
}

void SloMonitor::export_rule(const std::string& rule, const RuleState& st) {
  if (!opts_.export_metrics) return;
  auto& reg = MetricsRegistry::global();
  const std::string base = opts_.export_scope + "/" + rule;
  reg.gauge(base + "/tripped").set(st.tripped ? 1.0 : 0.0);
  reg.gauge(base + "/value").set(st.last_value);
  // Counter mirrors the internal trip total so reset(prefix) on the
  // export scope cannot double-count: set-by-difference.
  Counter& trips = reg.counter(base + "/trips");
  if (st.trips > trips.value()) trips.add(st.trips - trips.value());
}

std::vector<SloAlert> SloMonitor::observe(const MetricsSnapshot& snap) {
  std::scoped_lock lock(mutex_);
  std::vector<SloAlert> alerts;
  const std::uint64_t window = windows_++;

  if (has_prev_) {
    // latency_tail: window percentiles from the bucket deltas.
    const auto hit = snap.histograms.find(opts_.scope + "/request_seconds");
    if (hit != snap.histograms.end()) {
      HistogramSnapshot window_hist = hit->second;
      const auto pit = prev_.histograms.find(hit->first);
      if (pit != prev_.histograms.end()) {
        window_hist = hit->second.since(pit->second);
      }
      if (window_hist.count >= opts_.min_window_count) {
        const double p50 = window_hist.percentile(0.5);
        const double p99 = window_hist.percentile(0.99);
        if (p50 > 0.0) judge(kLatencyTail, p99 / p50, window, alerts);
      }
    }

    // reject_rate: admission outcomes over the window.
    const std::string admitted_name = opts_.scope + "/requests_admitted";
    const std::string rejected_name = opts_.scope + "/requests_rejected";
    const std::uint64_t d_admitted =
        counter_or_zero(snap.counters, admitted_name) -
        counter_or_zero(prev_.counters, admitted_name);
    const std::uint64_t d_rejected =
        counter_or_zero(snap.counters, rejected_name) -
        counter_or_zero(prev_.counters, rejected_name);
    const std::uint64_t offered = d_admitted + d_rejected;
    if (offered >= opts_.min_window_count) {
      judge(kRejectRate,
            static_cast<double>(d_rejected) / static_cast<double>(offered),
            window, alerts);
    }
  }

  // queue_depth: instantaneous high-water across shards — gauges need
  // no baseline, so the first window already judges it.
  {
    const std::string exact = opts_.scope + "/queue_depth";
    const std::string prefix = opts_.scope + "/";
    const std::string suffix = "/queue_depth";
    double depth = 0.0;
    bool found = false;
    for (const auto& [name, v] : snap.gauges) {
      const bool shard_scoped =
          name.size() > prefix.size() + suffix.size() &&
          name.compare(0, prefix.size(), prefix) == 0 &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0;
      if (name == exact || shard_scoped) {
        depth = std::max(depth, v);
        found = true;
      }
    }
    if (found) judge(kQueueDepth, depth, window, alerts);
  }

  prev_ = snap;
  has_prev_ = true;

  if (hook_) {
    for (const SloAlert& alert : alerts) hook_(alert);
  }
  return alerts;
}

bool SloMonitor::any_tripped() const {
  std::scoped_lock lock(mutex_);
  for (const auto& [rule, st] : rules_) {
    if (st.tripped) return true;
  }
  return false;
}

bool SloMonitor::tripped(const std::string& rule) const {
  std::scoped_lock lock(mutex_);
  const auto it = rules_.find(rule);
  return it != rules_.end() && it->second.tripped;
}

std::uint64_t SloMonitor::trips(const std::string& rule) const {
  std::scoped_lock lock(mutex_);
  const auto it = rules_.find(rule);
  return it == rules_.end() ? 0 : it->second.trips;
}

double SloMonitor::last_value(const std::string& rule) const {
  std::scoped_lock lock(mutex_);
  const auto it = rules_.find(rule);
  return it == rules_.end() ? 0.0 : it->second.last_value;
}

std::uint64_t SloMonitor::windows() const {
  std::scoped_lock lock(mutex_);
  return windows_;
}

std::string SloMonitor::summary() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream out;
  out.precision(4);
  bool first = true;
  for (const auto& [rule, st] : rules_) {
    if (!first) out << ' ';
    first = false;
    out << rule << '='
        << (!st.ever_evaluated ? "n/a" : st.tripped ? "TRIPPED" : "ok");
    if (st.ever_evaluated) {
      out << '(' << st.last_value << '/' << st.threshold << ')';
    }
  }
  return out.str();
}

}  // namespace zipflm::obs
