#include "zipflm/obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace zipflm::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kDefaultCapacity = 1 << 15;  // events per lane

/// One lane's ring.  The owning thread is the only writer of `ring_`
/// slots and the only `head_` incrementer; the exporter reads `head_`
/// with acquire and then the slots (see the header's synchronization
/// contract for why that read never races a live write).
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity, std::string label, int sort_key)
      : capacity_(capacity), label_(std::move(label)), sort_key_(sort_key) {}

  void emit(const TraceEvent& ev) {
    // The ring materializes on the owner's first emit, so binding a
    // lane costs a map entry, not capacity * sizeof(TraceEvent).  The
    // release store below publishes the resize together with the slot.
    if (ring_.empty()) ring_.resize(capacity_);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    ring_[static_cast<std::size_t>(h % capacity_)] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  void clear() { head_.store(0, std::memory_order_release); }

  /// Copy the surviving (newest) events, oldest first; returns the
  /// number lost to drop-oldest.
  std::uint64_t snapshot(std::vector<TraceEvent>& out) const {
    out.clear();
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (h == 0) return 0;  // ring possibly not materialized yet
    const std::uint64_t n = std::min<std::uint64_t>(h, capacity_);
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      out.push_back(ring_[static_cast<std::size_t>(i % capacity_)]);
    }
    return h - n;
  }

  const std::string& label() const noexcept { return label_; }
  int sort_key() const noexcept { return sort_key_; }

 private:
  const std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::atomic<std::uint64_t> head_{0};
  std::string label_;
  int sort_key_;
};

/// Global registry of lane buffers.  All mutation (adoption, clear,
/// export) is mutex-guarded; only the per-event fast path bypasses it.
class Collector {
 public:
  static Collector& get() {
    // Intentionally immortal: pool workers may still adopt lanes while
    // static destructors run (destruction order across TUs is
    // unspecified), so the registry must never be torn down.
    static Collector* c = new Collector;
    return *c;
  }

  std::shared_ptr<TraceBuffer> adopt(const std::string& label, int sort_key) {
    std::scoped_lock lock(mutex_);
    auto it = lanes_.find(label);
    if (it == lanes_.end()) {
      it = lanes_
               .emplace(label, std::make_shared<TraceBuffer>(capacity_, label,
                                                             sort_key))
               .first;
    }
    return it->second;
  }

  void set_capacity(std::size_t events) {
    std::scoped_lock lock(mutex_);
    capacity_ = std::max<std::size_t>(events, 16);
  }

  void clear() {
    std::scoped_lock lock(mutex_);
    for (auto& [label, buf] : lanes_) buf->clear();
  }

  TraceExportStats write(std::ostream& out);

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<TraceBuffer>> lanes_;
  std::size_t capacity_ = kDefaultCapacity;
};

/// The calling thread's lane binding.  Holding a shared_ptr keeps the
/// buffer alive past thread exit; the Collector holds the other
/// reference so joined threads' events survive until export.
struct ThreadLane {
  std::shared_ptr<TraceBuffer> buffer;
};

ThreadLane& thread_lane() {
  thread_local ThreadLane lane;
  return lane;
}

std::atomic<int> g_anon_lane_seq{0};

TraceBuffer& thread_buffer() {
  ThreadLane& lane = thread_lane();
  if (!lane.buffer) {
    // Unnamed thread: give it a stable anonymous lane sorted last.
    const int n = g_anon_lane_seq.fetch_add(1, std::memory_order_relaxed);
    lane.buffer =
        Collector::get().adopt("thread " + std::to_string(n), 1000 + n);
  }
  return *lane.buffer;
}

void json_escape(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
          << "0123456789abcdef"[c & 0xF];
    } else {
      out << c;
    }
  }
}

void write_args(std::ostream& out, const TraceEvent& ev) {
  if (ev.arg0_name == nullptr && ev.arg1_name == nullptr) return;
  out << ",\"args\":{";
  bool first = true;
  for (const auto& [name, value] :
       {std::pair{ev.arg0_name, ev.arg0}, std::pair{ev.arg1_name, ev.arg1}}) {
    if (name == nullptr) continue;
    if (!first) out << ',';
    first = false;
    out << '"';
    json_escape(out, name);
    out << "\":" << value;
  }
  out << '}';
}

TraceExportStats Collector::write(std::ostream& out) {
  std::scoped_lock lock(mutex_);
  TraceExportStats stats;

  // Stable tid assignment: lanes ordered by sort key, then label.
  std::vector<TraceBuffer*> ordered;
  ordered.reserve(lanes_.size());
  for (auto& [label, buf] : lanes_) ordered.push_back(buf.get());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceBuffer* a, const TraceBuffer* b) {
                     return a->sort_key() != b->sort_key()
                                ? a->sort_key() < b->sort_key()
                                : a->label() < b->label();
                   });

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ',';
    first = false;
  };
  std::vector<TraceEvent> events;
  for (std::size_t tid = 0; tid < ordered.size(); ++tid) {
    const TraceBuffer& buf = *ordered[tid];
    const std::uint64_t dropped = buf.snapshot(events);
    if (events.empty() && dropped == 0) continue;
    ++stats.lanes;
    stats.dropped += dropped;

    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"";
    json_escape(out, buf.label().c_str());
    if (dropped > 0) out << " (dropped " << dropped << ")";
    out << "\"}}";
    comma();
    out << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << tid << ",\"args\":{\"sort_index\":" << buf.sort_key() << "}}";

    for (const TraceEvent& ev : events) {
      comma();
      // Chrome trace timestamps are microseconds; keep ns resolution
      // with three decimals.
      out << "{\"name\":\"";
      json_escape(out, ev.name);
      out << "\",\"ph\":\"" << (ev.instant ? 'i' : 'X')
          << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":"
          << static_cast<double>(ev.start_ns) / 1e3;
      if (ev.instant) {
        out << ",\"s\":\"t\"";
      } else {
        out << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1e3;
      }
      write_args(out, ev);
      out << '}';
      ++stats.events;
    }
  }
  out << "]}";
  return stats;
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

void emit(const TraceEvent& ev) { thread_buffer().emit(ev); }

}  // namespace detail

void trace_enable(bool on) {
  if (on) detail::now_ns();  // pin the epoch before the first event
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void trace_set_buffer_capacity(std::size_t events) {
  Collector::get().set_capacity(events);
}

void trace_clear() { Collector::get().clear(); }

void set_thread_lane(const std::string& label, int sort_key) {
  thread_lane().buffer = Collector::get().adopt(label, sort_key);
}

TraceExportStats write_chrome_trace(std::ostream& out) {
  return Collector::get().write(out);
}

TraceExportStats write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  const TraceExportStats stats = write_chrome_trace(out);
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("trace write failed: " + path);
  }
  return stats;
}

}  // namespace zipflm::obs
