#include "zipflm/obs/trace.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/telemetry.hpp"

namespace zipflm::obs {

namespace detail {
std::atomic<bool> g_enabled{false};

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
          << "0123456789abcdef"[c & 0xF];
    } else {
      out << c;
    }
  }
}
}  // namespace detail

namespace {

constexpr std::size_t kDefaultCapacity = 1 << 15;  // events per lane

/// Cumulative drop-oldest losses across every lane, surfaced in every
/// metrics snapshot so silent span loss is visible off-box.  Function-
/// local so the registry outlives any static-destruction order games.
Counter& dropped_spans_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("obs/trace_dropped_spans");
  return c;
}

/// One lane's ring.  The owning thread is the only writer of `ring_`
/// slots and the only `head_` incrementer; the exporter reads `head_`
/// with acquire and then the slots (see the header's synchronization
/// contract for why that read never races a live write).
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity, std::string label, int sort_key)
      : capacity_(capacity), label_(std::move(label)), sort_key_(sort_key) {}

  void emit(const TraceEvent& ev) {
    // The ring materializes on the owner's first emit, so binding a
    // lane costs a map entry, not capacity * sizeof(TraceEvent).  The
    // release store below publishes the resize together with the slot.
    if (ring_.empty()) ring_.resize(capacity_);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h >= capacity_) dropped_spans_counter().add();  // overwriting a survivor
    ring_[static_cast<std::size_t>(h % capacity_)] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  void clear() { head_.store(0, std::memory_order_release); }

  /// Copy the surviving (newest) events, oldest first; returns the
  /// number lost to drop-oldest.
  std::uint64_t snapshot(std::vector<TraceEvent>& out) const {
    out.clear();
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (h == 0) return 0;  // ring possibly not materialized yet
    const std::uint64_t n = std::min<std::uint64_t>(h, capacity_);
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      out.push_back(ring_[static_cast<std::size_t>(i % capacity_)]);
    }
    return h - n;
  }

  const std::string& label() const noexcept { return label_; }
  int sort_key() const noexcept { return sort_key_; }

 private:
  const std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::atomic<std::uint64_t> head_{0};
  std::string label_;
  int sort_key_;
};

/// Global registry of lane buffers.  All mutation (adoption, clear,
/// snapshot) is mutex-guarded; only the per-event fast path bypasses it.
class Collector {
 public:
  static Collector& get() {
    // Intentionally immortal: pool workers may still adopt lanes while
    // static destructors run (destruction order across TUs is
    // unspecified), so the registry must never be torn down.
    static Collector* c = new Collector;
    return *c;
  }

  std::shared_ptr<TraceBuffer> adopt(const std::string& label, int sort_key) {
    std::scoped_lock lock(mutex_);
    auto it = lanes_.find(label);
    if (it == lanes_.end()) {
      it = lanes_
               .emplace(label, std::make_shared<TraceBuffer>(capacity_, label,
                                                             sort_key))
               .first;
    }
    return it->second;
  }

  void set_capacity(std::size_t events) {
    std::scoped_lock lock(mutex_);
    capacity_ = std::max<std::size_t>(events, 16);
  }

  void clear() {
    std::scoped_lock lock(mutex_);
    for (auto& [label, buf] : lanes_) buf->clear();
  }

  void set_process_label(const std::string& label) {
    std::scoped_lock lock(mutex_);
    process_label_ = label;
  }

  std::string process_label() {
    std::scoped_lock lock(mutex_);
    return process_label_;
  }

  std::vector<LaneSnapshot> snapshot_lanes();

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<TraceBuffer>> lanes_;
  std::size_t capacity_ = kDefaultCapacity;
  std::string process_label_ = "zipflm";
};

std::vector<LaneSnapshot> Collector::snapshot_lanes() {
  std::scoped_lock lock(mutex_);

  // Stable ordering: lanes by sort key, then label — the merged writer
  // assigns tids in this order.
  std::vector<TraceBuffer*> ordered;
  ordered.reserve(lanes_.size());
  for (auto& [label, buf] : lanes_) ordered.push_back(buf.get());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceBuffer* a, const TraceBuffer* b) {
                     return a->sort_key() != b->sort_key()
                                ? a->sort_key() < b->sort_key()
                                : a->label() < b->label();
                   });

  std::vector<LaneSnapshot> out;
  out.reserve(ordered.size());
  std::vector<TraceEvent> events;
  for (TraceBuffer* buf : ordered) {
    LaneSnapshot lane;
    lane.label = buf->label();
    lane.sort_key = buf->sort_key();
    lane.dropped = buf->snapshot(events);
    lane.events.reserve(events.size());
    for (const TraceEvent& ev : events) {
      OwnedTraceEvent o;
      o.name = ev.name != nullptr ? ev.name : "";
      for (std::size_t i = 0; i < TraceEvent::kMaxArgs; ++i) {
        if (ev.arg_name[i] != nullptr) o.arg_name[i] = ev.arg_name[i];
        o.arg[i] = ev.arg[i];
      }
      o.start_ns = ev.start_ns;
      o.dur_ns = ev.dur_ns;
      o.instant = ev.instant;
      lane.events.push_back(std::move(o));
    }
    out.push_back(std::move(lane));
  }
  return out;
}

/// The calling thread's lane binding.  Holding a shared_ptr keeps the
/// buffer alive past thread exit; the Collector holds the other
/// reference so joined threads' events survive until export.
struct ThreadLane {
  std::shared_ptr<TraceBuffer> buffer;
};

ThreadLane& thread_lane() {
  thread_local ThreadLane lane;
  return lane;
}

std::atomic<int> g_anon_lane_seq{0};

TraceBuffer& thread_buffer() {
  ThreadLane& lane = thread_lane();
  if (!lane.buffer) {
    // Unnamed thread: give it a stable anonymous lane sorted last.
    const int n = g_anon_lane_seq.fetch_add(1, std::memory_order_relaxed);
    lane.buffer =
        Collector::get().adopt("thread " + std::to_string(n), 1000 + n);
  }
  return *lane.buffer;
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

void emit(const TraceEvent& ev) { thread_buffer().emit(ev); }

}  // namespace detail

void trace_enable(bool on) {
  if (on) detail::now_ns();  // pin the epoch before the first event
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void trace_set_buffer_capacity(std::size_t events) {
  Collector::get().set_capacity(events);
}

void trace_clear() { Collector::get().clear(); }

void set_thread_lane(const std::string& label, int sort_key) {
  thread_lane().buffer = Collector::get().adopt(label, sort_key);
}

void set_process_label(const std::string& label) {
  Collector::get().set_process_label(label);
}

std::string process_label() { return Collector::get().process_label(); }

std::vector<LaneSnapshot> trace_lane_snapshot() {
  return Collector::get().snapshot_lanes();
}

TraceExportStats write_chrome_trace(std::ostream& out) {
  // The local export is the one-process case of the merged writer.
  ProcessTrace self;
  self.label = process_label();
  self.pid = 1;
  self.lanes = trace_lane_snapshot();
  return write_chrome_trace_merged(out, {std::move(self)});
}

TraceExportStats write_chrome_trace_file(const std::string& path) {
  ProcessTrace self;
  self.label = process_label();
  self.pid = 1;
  self.lanes = trace_lane_snapshot();
  return write_chrome_trace_merged_file(path, {std::move(self)});
}

}  // namespace zipflm::obs
