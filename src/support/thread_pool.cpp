#include "zipflm/support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <future>

#include "zipflm/support/error.hpp"

namespace zipflm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = size();
  // Small trip counts are cheaper serial than through the queue.
  if (workers <= 1 || n < 2048) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> remaining{chunks};
  std::promise<void> done;
  auto future = done.get_future();
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    submit([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done.set_value();
      }
    });
  }
  future.wait();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace zipflm
