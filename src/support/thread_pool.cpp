#include "zipflm/support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "zipflm/obs/trace.hpp"
#include "zipflm/support/error.hpp"

namespace zipflm {

namespace {
std::size_t default_thread_count() {
  if (const char* env = std::getenv("ZIPFLM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

// Distinct trace lanes per pool instance: two pools may be live at once
// (a local test pool next to the global one), and lanes must have a
// single live writer.
std::atomic<int> g_pool_seq{0};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  const int pool_id = g_pool_seq.fetch_add(1, std::memory_order_relaxed);
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, pool_id, i] {
#if ZIPFLM_TRACE
      // Pool lanes sort after the simulated ranks (rank lanes use their
      // rank as the sort key) and the serve scheduler (100).
      obs::set_thread_lane("pool" + std::to_string(pool_id) + " worker " +
                               std::to_string(i),
                           200 + pool_id * 64 + static_cast<int>(i));
#endif
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.total) return;
    const std::size_t begin = c * job.chunk;
    const std::size_t end = std::min(job.n, begin + job.chunk);
    {
      // The span closes (and its ring write lands) before this chunk's
      // done increment, so the submitter's final acquire of `done` —
      // and anything after it, e.g. a trace export — happens-after
      // every worker's trace writes.
      ZIPFLM_TRACE_SPAN_ARG("pool_chunk", "indices",
                            static_cast<double>(end - begin));
      job.fn(begin, end);
    }
    job.done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t last_seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      wake_cv_.wait(lock, [&] { return stop_ || seq_ != last_seen; });
      if (stop_) return;
      last_seen = seq_;
      job = job_;  // own a reference: a stale claim can never touch a
                   // newer job's counters
    }
    if (!job) continue;
    run_chunks(*job);
    if (job->done.load(std::memory_order_acquire) == job->total) {
      // Possibly the last finisher: wake the submitting thread.
      std::scoped_lock lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_chunks(
      n,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      grain);
}

void ThreadPool::parallel_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  // Serial fast path: nothing to share with, or too little work to pay
  // for a wake-up (see kDefaultGrain).
  if (workers_.empty() || n <= std::max<std::size_t>(grain, 1)) {
    fn(0, n);
    return;
  }
  // One region at a time.  A concurrent submitter (another rank thread)
  // or a nested call from inside a chunk runs serially inline — same
  // result, no deadlock.
  if (busy_.exchange(true, std::memory_order_acquire)) {
    fn(0, n);
    return;
  }

  ZIPFLM_TRACE_SPAN_ARG("parallel_region", "indices", static_cast<double>(n));
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->n = n;
  const std::size_t lanes = size();
  job->chunk =
      std::max(std::max<std::size_t>(grain, 1), (n + lanes - 1) / lanes);
  job->total = (n + job->chunk - 1) / job->chunk;
  {
    std::scoped_lock lock(mutex_);
    job_ = job;
    ++seq_;
  }
  wake_cv_.notify_all();

  run_chunks(*job);  // the caller is a lane too
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->total;
    });
    job_.reset();
  }
  busy_.store(false, std::memory_order_release);
}

namespace {
std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::scoped_lock lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::scoped_lock lock(global_mutex());
  global_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace zipflm
