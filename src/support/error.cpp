#include "zipflm/support/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace zipflm::detail {

[[noreturn]] void assertion_failure(const char* expr, const char* message,
                                    const std::source_location& loc) {
  std::fprintf(stderr,
               "zipflm assertion failed: %s\n  message: %s\n  at %s:%u (%s)\n",
               expr, message, loc.file_name(),
               static_cast<unsigned>(loc.line()), loc.function_name());
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void check_failure(const char* expr, const std::string& message,
                                const std::source_location& loc) {
  std::ostringstream os;
  os << message << " [check `" << expr << "` failed at " << loc.file_name()
     << ":" << loc.line() << "]";
  throw ConfigError(os.str());
}

}  // namespace zipflm::detail
