#include "zipflm/support/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace zipflm {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> units = {"B", "KB", "MB", "GB",
                                                       "TB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  }
  return buf;
}

std::string format_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace zipflm
