// Reusable cyclic barrier for the in-process rank runtime.
//
// std::barrier would work, but we also need (a) a generation counter that
// collectives use to detect mismatched invocation order across ranks and
// (b) the ability to time how long ranks wait (load-imbalance accounting).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "zipflm/support/error.hpp"

namespace zipflm {

/// Thrown out of arrive_and_wait() when another rank failed and aborted
/// the barrier; distinguishes abort victims from the originating error.
class BarrierAborted : public Error {
 public:
  BarrierAborted() : Error("barrier aborted by a failing rank") {}
};

class CyclicBarrier {
 public:
  explicit CyclicBarrier(int parties) : parties_(parties) {
    ZIPFLM_CHECK(parties > 0, "barrier needs at least one party");
  }

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Block until all parties arrive.  Returns the generation index that
  /// this arrival completed (same value on every rank for one crossing).
  /// Throws zipflm::Error if the barrier was aborted while waiting, so a
  /// failing rank cannot deadlock the remaining ranks.
  std::uint64_t arrive_and_wait() {
    std::unique_lock lock(mutex_);
    if (aborted_) throw BarrierAborted();
    const std::uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen || aborted_; });
      if (aborted_ && generation_ == gen) throw BarrierAborted();
    }
    return gen;
  }

  /// Wake every waiter with an error; subsequent arrivals throw too.
  void abort() {
    {
      std::scoped_lock lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

  /// Clear abort/arrival state.  Only valid while no thread is waiting
  /// (i.e. between CommWorld::run invocations).
  void reset() {
    std::scoped_lock lock(mutex_);
    aborted_ = false;
    arrived_ = 0;
  }

  int parties() const noexcept { return parties_; }

  /// Number of completed crossings so far (monotone; racy read is fine for
  /// diagnostics only).
  std::uint64_t generation() const {
    std::scoped_lock lock(mutex_);
    return generation_;
  }

 private:
  const int parties_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace zipflm
