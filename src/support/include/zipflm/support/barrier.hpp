// Reusable cyclic barrier for the in-process rank runtime.
//
// std::barrier would work, but we also need (a) a generation counter that
// collectives use to detect mismatched invocation order across ranks and
// (b) the ability to time how long ranks wait (load-imbalance accounting).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "zipflm/support/error.hpp"

namespace zipflm {

/// Thrown out of arrive_and_wait() when another rank failed and aborted
/// the barrier; distinguishes abort victims from the originating error.
class BarrierAborted : public Error {
 public:
  BarrierAborted() : Error("barrier aborted by a failing rank") {}
};

class CyclicBarrier {
 public:
  explicit CyclicBarrier(int parties) : parties_(parties) {
    ZIPFLM_CHECK(parties > 0, "barrier needs at least one party");
  }

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Block until all parties arrive.  Returns the generation index that
  /// this arrival completed (same value on every rank for one crossing).
  /// Throws zipflm::Error if the barrier was aborted while waiting, so a
  /// failing rank cannot deadlock the remaining ranks.  With a timeout
  /// configured (set_timeout_seconds), a crossing that does not complete
  /// in time poisons the barrier and throws CollectiveTimeoutError on
  /// every waiter — a dead rank can stall the ring, but never silently.
  std::uint64_t arrive_and_wait() {
    std::unique_lock lock(mutex_);
    if (aborted_) throw BarrierAborted();
    if (timed_out_) throw_timeout();
    const std::uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return gen;
    }
    const auto woken = [&] {
      return generation_ != gen || aborted_ || timed_out_;
    };
    if (timeout_seconds_ <= 0.0) {
      cv_.wait(lock, woken);
    } else {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_seconds_));
      if (!cv_.wait_until(lock, deadline, woken)) {
        timed_out_ = true;  // poison: every other waiter throws too
        cv_.notify_all();
        throw_timeout();
      }
    }
    if (generation_ == gen) {
      if (timed_out_) throw_timeout();
      if (aborted_) throw BarrierAborted();
    }
    return gen;
  }

  /// Maximum time one crossing may take before it is declared dead.
  /// 0 (the default) waits forever.  Only call while no thread waits.
  void set_timeout_seconds(double seconds) {
    std::scoped_lock lock(mutex_);
    timeout_seconds_ = seconds;
  }

  /// Wake every waiter with an error; subsequent arrivals throw too.
  void abort() {
    {
      std::scoped_lock lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

  /// Clear abort/timeout/arrival state.  Only valid while no thread is
  /// waiting (i.e. between CommWorld::run invocations).
  void reset() {
    std::scoped_lock lock(mutex_);
    aborted_ = false;
    timed_out_ = false;
    arrived_ = 0;
  }

  int parties() const noexcept { return parties_; }

  /// Number of completed crossings so far (monotone; racy read is fine for
  /// diagnostics only).
  std::uint64_t generation() const {
    std::scoped_lock lock(mutex_);
    return generation_;
  }

 private:
  [[noreturn]] void throw_timeout() const {
    throw CollectiveTimeoutError(
        "collective timed out after " + std::to_string(timeout_seconds_) +
        " s: a rank stopped participating in the ring schedule");
  }

  const int parties_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  double timeout_seconds_ = 0.0;
  bool aborted_ = false;
  bool timed_out_ = false;
};

}  // namespace zipflm
