// Error handling primitives shared by every zipflm module.
//
// Following the C++ Core Guidelines (E.2, E.3) we throw exceptions for
// runtime failures that callers can reasonably handle (bad configuration,
// simulated out-of-memory) and use ZIPFLM_ASSERT for programming errors
// that indicate a bug in the library itself.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace zipflm {

/// Base class of all zipflm exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A user-supplied configuration value is invalid (bad dimension, bad
/// rank count, inconsistent model description, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A simulated device ran out of memory.  This mirrors the `*` entries in
/// the paper's Tables III and IV where the baseline exceeds 12 GB HBM.
class OutOfMemoryError : public Error {
 public:
  OutOfMemoryError(const std::string& what, std::size_t requested_bytes,
                   std::size_t available_bytes)
      : Error(what),
        requested_bytes_(requested_bytes),
        available_bytes_(available_bytes) {}

  std::size_t requested_bytes() const noexcept { return requested_bytes_; }
  std::size_t available_bytes() const noexcept { return available_bytes_; }

 private:
  std::size_t requested_bytes_ = 0;
  std::size_t available_bytes_ = 0;
};

/// A collective was invoked inconsistently across ranks (mismatched sizes,
/// mismatched operation order).  Corresponds to MPI's undefined behaviour
/// on mismatched collectives, surfaced as a hard error in the simulator.
class CollectiveMismatchError : public Error {
 public:
  explicit CollectiveMismatchError(const std::string& what) : Error(what) {}
};

/// A collective's barrier timed out because some rank stopped
/// participating (a dead rank or a pathological straggler).  Thrown
/// symmetrically on every surviving rank, converting what would be a
/// silent deadlock into a recoverable failure — the trainer responds by
/// rolling back to the last checkpoint and excluding the dead rank.
class CollectiveTimeoutError : public Error {
 public:
  explicit CollectiveTimeoutError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assertion_failure(const char* expr, const char* message,
                                    const std::source_location& loc);
[[noreturn]] void check_failure(const char* expr, const std::string& message,
                                const std::source_location& loc);
}  // namespace detail

}  // namespace zipflm

/// Programming-error assertion: active in all build types because the
/// simulator's correctness claims depend on them.  Terminates.
#define ZIPFLM_ASSERT(expr, message)                              \
  do {                                                            \
    if (!(expr)) [[unlikely]] {                                   \
      ::zipflm::detail::assertion_failure(                        \
          #expr, (message), std::source_location::current());     \
    }                                                             \
  } while (false)

/// Recoverable-error check: throws zipflm::ConfigError.
#define ZIPFLM_CHECK(expr, message)                               \
  do {                                                            \
    if (!(expr)) [[unlikely]] {                                   \
      ::zipflm::detail::check_failure(                            \
          #expr, (message), std::source_location::current());     \
    }                                                             \
  } while (false)
