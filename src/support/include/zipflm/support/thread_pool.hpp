// Minimal fixed-size thread pool used for intra-"GPU" kernel parallelism
// (blocked GEMM, elementwise sweeps).  Rank-level parallelism in comm/ uses
// dedicated threads, not this pool, so the two levels never deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace zipflm {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and block until done.
  /// Falls back to a serial loop when n is small or the pool is size 1.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Split [0, n) into contiguous chunks, one task per chunk:
  /// fn(begin, end).  This is the form kernels actually want.
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool for kernels; created on first use.
  static ThreadPool& global();

 private:
  void submit(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace zipflm
