// Minimal fixed-size thread pool used for intra-"GPU" kernel parallelism
// (blocked GEMM, elementwise sweeps, exchange reduce).  Rank-level
// parallelism in comm/ uses dedicated threads, not this pool; if a rank
// thread finds the pool busy it simply runs its loop serially inline, so
// the two levels never deadlock and never contend.
//
// Dispatch is one atomic chunk counter per parallel region — not one
// queue node per chunk — so a region costs one allocation (the shared
// job record) instead of O(chunks) std::function heap nodes.  Workers
// and the calling thread all claim chunks from the same counter.
//
// Determinism: the pool only ever *partitions* index space; kernels
// built on it assign every output element to exactly one chunk, so the
// per-element float-operation order is independent of the worker count
// and of which thread executes which chunk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace zipflm {

class ThreadPool {
 public:
  /// Below this many indices a region runs serially inline: one
  /// mutex+cv wake costs roughly a few microseconds, which a loop body
  /// of ~1-2 ns/index only amortizes in the multi-thousand range.
  /// Callers whose per-index work is substantial (a gemm block, a
  /// softmax row) pass an explicit smaller grain.
  static constexpr std::size_t kDefaultGrain = 4096;

  /// threads == 0 selects the ZIPFLM_THREADS environment override if
  /// set, otherwise hardware_concurrency (at least 1).  The pool spawns
  /// threads - 1 workers; the calling thread is the remaining lane.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Degree of parallelism (workers + the participating caller).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Run fn(i) for i in [0, n) across the pool and block until done.
  /// Runs serially inline when n <= grain or the pool is busy with a
  /// region submitted by another thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = kDefaultGrain);

  /// Split [0, n) into contiguous chunks of at most ceil(n / lanes)
  /// indices (at least `grain` each) and run fn(begin, end) for every
  /// chunk.  This is the form kernels actually want.
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& fn,
                       std::size_t grain = kDefaultGrain);

  /// Process-wide pool for kernels; created on first use (honouring
  /// ZIPFLM_THREADS).
  static ThreadPool& global();

  /// Replace the global pool (test / bench hook for determinism checks
  /// across thread counts).  Not safe while kernels are running.
  static void set_global_threads(std::size_t threads);

 private:
  struct Job {
    std::function<void(std::size_t, std::size_t)> fn;
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::size_t total = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
  };

  void worker_loop();
  static void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::atomic<bool> busy_{false};  // a region is in flight (or nested)

  std::mutex mutex_;               // guards job_/seq_/stop_ and the cvs
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  std::uint64_t seq_ = 0;
  bool stop_ = false;
};

}  // namespace zipflm
