// Wall-clock stopwatch for benchmarking real kernel execution.
// Simulated time (hours-per-epoch in the paper's tables) lives in
// zipflm::sim, not here.
#pragma once

#include <chrono>

namespace zipflm {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace zipflm
