// Named wall-clock phase accumulators for coarse per-step profiling
// (forward / backward / exchange / optimizer).  The registry is global
// and mutex-protected: phases are milliseconds-scale regions, so one
// lock per region is noise, and rank threads spawned by CommWorld can
// report into the same table the benchmark main thread reads.
//
// This measures *real* kernel time on the host.  Simulated device time
// (the paper's hours-per-epoch tables) lives in zipflm::sim instead.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "zipflm/support/stopwatch.hpp"

namespace zipflm {

class PhaseTimers {
 public:
  /// Add `seconds` to the accumulator for `name`.
  static void add(const std::string& name, double seconds) {
    std::scoped_lock lock(mutex());
    table()[name] += seconds;
  }

  /// Accumulated seconds for `name` (0 if never reported).
  static double seconds(const std::string& name) {
    std::scoped_lock lock(mutex());
    const auto it = table().find(name);
    return it == table().end() ? 0.0 : it->second;
  }

  static void reset() {
    std::scoped_lock lock(mutex());
    table().clear();
  }

 private:
  static std::mutex& mutex() {
    static std::mutex m;
    return m;
  }
  static std::map<std::string, double>& table() {
    static std::map<std::string, double> t;
    return t;
  }
};

/// RAII phase region: accumulates its lifetime into PhaseTimers.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name) : name_(name) {}
  ~PhaseScope() { PhaseTimers::add(name_, watch_.seconds()); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* name_;
  Stopwatch watch_;
};

}  // namespace zipflm
