// Named wall-clock phase accumulators for coarse per-step profiling
// (forward / backward / exchange / optimizer).
//
// Since the zipflm::obs refactor this is a thin shim over the central
// MetricsRegistry: a phase named "forward" accumulates into the gauge
// "phase/forward_seconds", so the legacy static API, the unified
// metrics snapshot, and the benchmarks that read either all see the
// same numbers.  The old implementation serialized every hot-loop
// region on one global mutex-guarded map; updates are now a shared-lock
// name lookup plus a relaxed atomic add (and PhaseScope additionally
// emits a trace span, so phases appear on the Perfetto timeline of
// whichever rank thread ran them).
//
// This measures *real* kernel time on the host.  Simulated device time
// (the paper's hours-per-epoch tables) lives in zipflm::sim instead.
#pragma once

#include <string>

#include "zipflm/obs/metrics.hpp"
#include "zipflm/obs/trace.hpp"
#include "zipflm/support/stopwatch.hpp"

namespace zipflm {

class PhaseTimers {
 public:
  /// Registry name of phase `name` ("forward" -> "phase/forward_seconds").
  static std::string metric_name(const std::string& name) {
    return "phase/" + name + "_seconds";
  }

  /// Add `seconds` to the accumulator for `name`.
  static void add(const std::string& name, double seconds) {
    gauge(name).add(seconds);
  }

  /// Accumulated seconds for `name` (0 if never reported).
  static double seconds(const std::string& name) {
    return gauge(name).value();
  }

  /// Zero every phase accumulator (other registry metrics untouched).
  static void reset() { obs::MetricsRegistry::global().reset("phase/"); }

 private:
  static obs::Gauge& gauge(const std::string& name) {
    return obs::MetricsRegistry::global().gauge(metric_name(name));
  }
};

/// RAII phase region: accumulates its lifetime into PhaseTimers (i.e.
/// the metrics registry) and traces it as a span on the current lane.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name) : name_(name), span_(name) {}
  ~PhaseScope() { PhaseTimers::add(name_, watch_.seconds()); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* name_;
  obs::SpanScope span_;
  Stopwatch watch_;
};

}  // namespace zipflm
