// Binary serialization primitives shared by the checkpoint writer and
// the stateful components it persists (optimizer moments, loss-scaler
// policy, RNG streams).
//
// All integers are written in host byte order — checkpoints are a
// crash-recovery mechanism for the machine that wrote them, not an
// interchange format.  Readers throw ConfigError (via ZIPFLM_CHECK) on
// truncation, so a short read never yields silently-zeroed state.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

#include "zipflm/support/error.hpp"

namespace zipflm {

template <typename T>
  requires std::is_trivially_copyable_v<T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  ZIPFLM_CHECK(in.good(), "serialized stream truncated");
  return value;
}

inline void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& in,
                               std::uint64_t max_len = 1u << 20) {
  const auto n = read_pod<std::uint64_t>(in);
  ZIPFLM_CHECK(n < max_len, "implausible string length in serialized stream");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  ZIPFLM_CHECK(in.good(), "serialized stream truncated");
  return s;
}

/// FNV-1a over a byte range: the checkpoint trailer checksum.  Not
/// cryptographic — it only needs to catch truncation and bit rot.
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace zipflm
