// Deterministic, splittable pseudo-random number generation.
//
// The paper's seeding technique (Section III-B) requires precise control
// over which ranks share a random stream.  std::mt19937 state is large and
// awkward to fork deterministically, so we use SplitMix64 for seeding and
// xoshiro256** for bulk generation: tiny state, excellent statistical
// quality, and a cheap `jump()`-free forking discipline (derive child seeds
// through SplitMix64).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace zipflm {

/// SplitMix64: used to expand one 64-bit seed into many well-mixed seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's workhorse generator.
/// Satisfies std::uniform_random_bit_generator so it plugs into <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5EEDF00DULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded sampling (single-pass variant;
    // the modulo bias is < 2^-64 * n, negligible for our n < 2^32).
    const std::uint64_t x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * n) >> 64);
  }

  /// Standard normal via Box-Muller (returns one value, caches none:
  /// keeps the generator state a pure function of draw count).
  double normal() noexcept;

  /// Derive a child generator whose stream is independent of the parent's
  /// continued use.  Deterministic in (parent seed, stream id).
  static Rng fork(std::uint64_t seed, std::uint64_t stream) noexcept {
    SplitMix64 sm(seed ^ (0xA5A5A5A5DEADBEEFULL + stream * 0x9E3779B97F4A7C15ULL));
    return Rng(sm.next());
  }

  /// Raw generator state, for exact checkpoint/resume: restoring the
  /// state continues the stream from precisely the same draw.
  constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace zipflm
