// Human-readable formatting helpers used by benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace zipflm {

/// "1.23 GB", "512.0 MB", "96 B" — binary units (GiB shown as GB to match
/// the paper's usage).
std::string format_bytes(std::uint64_t bytes);

/// "3.5 h", "12.4 min", "8.1 s", "730 us".
std::string format_duration(double seconds);

/// "1.23e+07" style compact scientific for table cells.
std::string format_sci(double value, int digits = 2);

/// Fixed-point with the given number of decimals.
std::string format_fixed(double value, int decimals = 2);

/// "12,288" style thousands separators.
std::string format_count(std::uint64_t value);

}  // namespace zipflm
